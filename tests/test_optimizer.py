"""Tests for Algorithm 2 (optimal abstraction), brute force, dual, compression."""

import math

import pytest

from repro.abstraction.builders import tree_from_categories
from repro.core.brute_force import brute_force_optimal_abstraction
from repro.core.compression import compress_to_size, compression_baseline, provenance_size
from repro.core.dual import find_dual_optimal_abstraction
from repro.core.loi import LeafWeightDistribution
from repro.core.optimizer import OptimizerConfig, find_optimal_abstraction
from repro.core.privacy import PrivacyComputer
from repro.db.database import KDatabase
from repro.db.schema import Schema
from repro.errors import OptimizationError
from repro.provenance.builder import build_kexample
from repro.query.parser import parse_cq


class TestPaperOptimum:
    def test_example_315(self, paper_example, paper_tree):
        """Example 3.15: the optimal abstraction at k=2 has LOI ln 15."""
        result = find_optimal_abstraction(paper_example, paper_tree, threshold=2)
        assert result.found
        assert result.privacy == 2
        assert math.isclose(result.loi, math.log(15))
        assert result.edges_used == 2

    def test_threshold_1_is_identity(self, paper_example, paper_tree):
        result = find_optimal_abstraction(paper_example, paper_tree, threshold=1)
        assert result.found
        assert result.loi == 0.0
        assert result.edges_used == 0

    def test_stats_populated(self, paper_example, paper_tree):
        result = find_optimal_abstraction(paper_example, paper_tree, threshold=2)
        assert result.stats.candidates_scanned > 0
        assert result.stats.privacy_computations > 0
        assert result.stats.elapsed_seconds > 0

    def test_loi_first_skips_privacy_calls(self, paper_example, paper_tree):
        eager = find_optimal_abstraction(
            paper_example, paper_tree, threshold=2,
            config=OptimizerConfig(loi_first=False, sort_abstractions=False,
                                   prune_dominated=False),
        )
        lazy = find_optimal_abstraction(paper_example, paper_tree, threshold=2)
        assert lazy.stats.privacy_computations < eager.stats.privacy_computations
        assert math.isclose(lazy.loi, eager.loi)

    def test_incompatible_tree_rejected(self, paper_example, paper_db):
        bad_tree = tree_from_categories({"p1": ["h1", "h2"]})
        with pytest.raises(OptimizationError):
            find_optimal_abstraction(paper_example, bad_tree, threshold=1)


class TestAgreementWithBruteForce:
    @pytest.mark.parametrize("threshold", [1, 2])
    def test_same_optimal_loi(self, paper_example, paper_tree, threshold):
        """Exhaustive unordered scan (fast privacy) agrees with Algorithm 2."""
        fast = find_optimal_abstraction(paper_example, paper_tree, threshold)
        exhaustive = find_optimal_abstraction(
            paper_example, paper_tree, threshold,
            config=OptimizerConfig(
                sort_abstractions=False, loi_first=True, prune_dominated=False
            ),
        )
        assert fast.found == exhaustive.found
        if fast.found:
            assert math.isclose(fast.loi, exhaustive.loi)

    def test_small_synthetic_instance(self):
        db = KDatabase(Schema.from_dict({"R": ["a", "b"], "S": ["b", "c"]}))
        db.insert("R", (1, 10), "r1")
        db.insert("R", (2, 20), "r2")
        db.insert("R", (3, 10), "r3")
        db.insert("S", (10, 5), "s1")
        db.insert("S", (20, 5), "s2")
        db.insert("S", (10, 6), "s3")
        tree = tree_from_categories({
            "Rs": {"Rlow": ["r1", "r2"], "Rhigh": ["r3"]},
            "Ss": ["s1", "s2", "s3"],
        })
        example = build_kexample(
            parse_cq("Q(a) :- R(a, b), S(b, c)"), db, n_rows=2
        )
        fast = find_optimal_abstraction(example, tree, threshold=2)
        slow = brute_force_optimal_abstraction(example, tree, threshold=2)
        assert fast.found == slow.found
        if fast.found:
            assert math.isclose(fast.loi, slow.loi)


class TestConfigs:
    def test_unsorted_scan_finds_same_optimum(self, paper_example, paper_tree):
        config = OptimizerConfig(sort_abstractions=False, prune_dominated=False)
        result = find_optimal_abstraction(
            paper_example, paper_tree, threshold=2, config=config
        )
        assert result.found
        assert math.isclose(result.loi, math.log(15))

    def test_pruning_preserves_optimum(self, paper_example, paper_tree):
        no_prune = find_optimal_abstraction(
            paper_example, paper_tree, threshold=2,
            config=OptimizerConfig(prune_dominated=False),
        )
        pruned = find_optimal_abstraction(
            paper_example, paper_tree, threshold=2,
            config=OptimizerConfig(prune_dominated=True),
        )
        assert math.isclose(no_prune.loi, pruned.loi)
        assert pruned.stats.candidates_scanned <= no_prune.stats.candidates_scanned

    def test_max_candidates_respected(self, paper_example, paper_tree):
        config = OptimizerConfig(max_candidates=3)
        result = find_optimal_abstraction(
            paper_example, paper_tree, threshold=2, config=config
        )
        assert result.stats.candidates_scanned <= 4

    def test_nonuniform_distribution_disables_pruning(
        self, paper_example, paper_tree
    ):
        weights = {leaf: (2.0 if leaf.startswith("h") else 1.0)
                   for leaf in paper_tree.leaves()}
        result = find_optimal_abstraction(
            paper_example, paper_tree, threshold=2,
            distribution=LeafWeightDistribution(weights),
        )
        assert result.found
        assert result.privacy >= 2


class TestSortedOrder:
    def test_identity_scanned_first_and_cone_pruned(
        self, paper_example, paper_tree
    ):
        """At threshold 1 the identity (cost 0, LOI 0) wins immediately;
        with dominance pruning only its direct successors are scanned
        (every abstraction has LOI > 0)."""
        result = find_optimal_abstraction(paper_example, paper_tree, threshold=1)
        assert result.loi == 0.0
        assert result.stats.privacy_computations == 1
        n_vars = 4  # h1, h2, i1, i2 are the abstractable variables
        assert result.stats.candidates_scanned <= 1 + n_vars


class TestDual:
    def test_dual_matches_primal_at_cap(self, paper_example, paper_tree):
        primal = find_optimal_abstraction(paper_example, paper_tree, threshold=2)
        dual = find_dual_optimal_abstraction(
            paper_example, paper_tree, max_loi=primal.loi
        )
        assert dual.found
        assert dual.privacy >= primal.privacy
        assert dual.loi <= primal.loi + 1e-9

    def test_tight_cap_forces_identity(self, paper_example, paper_tree):
        dual = find_dual_optimal_abstraction(paper_example, paper_tree, max_loi=0.0)
        assert dual.found
        assert dual.loi == 0.0
        assert dual.privacy == 1  # only Q_real fits the raw example

    def test_dual_scans_fewer_candidates_than_unbounded(self, paper_example, paper_tree):
        wide = find_dual_optimal_abstraction(
            paper_example, paper_tree, max_loi=math.inf,
            config=OptimizerConfig(max_candidates=500),
        )
        narrow = find_dual_optimal_abstraction(
            paper_example, paper_tree, max_loi=1.5,
        )
        assert narrow.stats.privacy_computations <= wide.stats.privacy_computations


class TestCompression:
    def test_compress_reduces_size(self, paper_example, paper_tree):
        function = compress_to_size(paper_example, paper_tree, target_size=3)
        assert function is not None
        targets = {
            paper_example.rows[r].occurrences[o]: label
            for (r, o), label in function.assignment.items()
        }
        full = {v: targets.get(v, v) for v in paper_example.variables()}
        assert provenance_size(full, paper_example) <= 3

    def test_compress_to_current_size_is_identity(self, paper_example, paper_tree):
        n_vars = len(paper_example.variables())
        function = compress_to_size(paper_example, paper_tree, n_vars)
        assert function is not None
        assert function.num_abstracted() == 0

    def test_invalid_target_returns_none(self, paper_example, paper_tree):
        assert compress_to_size(paper_example, paper_tree, 0) is None

    def test_baseline_meets_threshold_with_higher_loi(
        self, paper_example, paper_tree
    ):
        """Figure 18: the compression baseline pays more LOI than optimal."""
        ours = find_optimal_abstraction(paper_example, paper_tree, threshold=2)
        theirs = compression_baseline(paper_example, paper_tree, threshold=2)
        assert theirs.found
        assert theirs.privacy >= 2
        assert theirs.loi >= ours.loi

    def test_baseline_unsatisfiable_threshold(self, paper_example, paper_tree):
        result = compression_baseline(paper_example, paper_tree, threshold=10**6)
        assert not result.found
        assert result.privacy == -1
