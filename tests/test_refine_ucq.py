"""Tests for per-occurrence refinement and the UCQ utilities."""

import pytest

from repro.abstraction.function import AbstractionFunction
from repro.core.optimizer import find_optimal_abstraction
from repro.core.privacy import PrivacyComputer
from repro.core.refine import refine_per_occurrence
from repro.core.consistency import ConsistencyConfig, consistent_queries, trivial_union_query
from repro.errors import OptimizationError
from repro.query.ast import UCQ
from repro.query.containment import ucq_is_contained_in, ucq_is_equivalent
from repro.query.join_graph import is_connected
from repro.query.parser import parse_cq, parse_ucq


class TestRefinePerOccurrence:
    def test_never_raises_loi(self, paper_example, paper_tree, paper_db):
        result = find_optimal_abstraction(paper_example, paper_tree, threshold=2)
        assert result.found and result.function is not None
        refined = refine_per_occurrence(
            paper_example, paper_tree, result.function, threshold=2
        )
        assert refined.loi <= result.loi + 1e-12
        assert refined.privacy >= 2

    def test_refined_privacy_verified_independently(
        self, paper_example, paper_tree, paper_db
    ):
        result = find_optimal_abstraction(paper_example, paper_tree, threshold=2)
        refined = refine_per_occurrence(
            paper_example, paper_tree, result.function, threshold=2
        )
        computer = PrivacyComputer(paper_tree, paper_db.registry)
        abstracted = refined.function.apply(paper_example)
        assert computer.privacy(abstracted) == refined.privacy

    def test_identity_input_is_fixpoint(self, paper_example, paper_tree):
        identity = AbstractionFunction.identity(paper_tree, paper_example)
        refined = refine_per_occurrence(
            paper_example, paper_tree, identity, threshold=1
        )
        assert refined.moves_applied == 0
        assert refined.loi == 0.0

    def test_unsatisfied_input_rejected(self, paper_example, paper_tree):
        identity = AbstractionFunction.identity(paper_tree, paper_example)
        with pytest.raises(OptimizationError):
            refine_per_occurrence(
                paper_example, paper_tree, identity, threshold=2
            )

    def test_coarse_input_refines_down(self, paper_example, paper_tree):
        """Starting from an over-coarse abstraction, refinement recovers a
        cheaper per-occurrence one with the same guarantee."""
        coarse = AbstractionFunction.uniform(
            paper_tree, paper_example,
            {"h1": "Social Network", "h2": "Social Network"},
        )
        from repro.core.loi import loss_of_information

        coarse_loi = loss_of_information(coarse.apply(paper_example), paper_tree)
        refined = refine_per_occurrence(
            paper_example, paper_tree, coarse, threshold=2
        )
        assert refined.loi < coarse_loi
        assert refined.moves_applied >= 1


class TestUCQContainment:
    def test_cq_fallback(self):
        q1 = parse_cq("Q(x) :- R(x, 'a')")
        q2 = parse_cq("Q(x) :- R(x, y)")
        assert ucq_is_contained_in(q1, q2)
        assert not ucq_is_contained_in(q2, q1)

    def test_union_containment(self):
        union = parse_ucq("Q(x) :- R(x, 'a'); Q(x) :- R(x, 'b')")
        general = parse_ucq("Q(x) :- R(x, y)")
        assert ucq_is_contained_in(union, general)
        assert not ucq_is_contained_in(general, union)

    def test_equivalence_modulo_disjunct_order(self):
        u1 = parse_ucq("Q(x) :- R(x, 'a'); Q(x) :- S(x)")
        u2 = parse_ucq("Q(x) :- S(x); Q(x) :- R(x, 'a')")
        assert ucq_is_equivalent(u1, u2)

    def test_redundant_disjunct_equivalence(self):
        lean = parse_ucq("Q(x) :- R(x, y)")
        redundant = parse_ucq("Q(x) :- R(x, y); Q(x) :- R(x, 'a')")
        assert ucq_is_equivalent(lean, redundant)


class TestTrivialUnionQuery:
    def test_shape(self, paper_example):
        trivial = trivial_union_query(paper_example)
        assert isinstance(trivial, UCQ)
        assert len(trivial.disjuncts) == len(paper_example.rows)
        for disjunct in trivial.disjuncts:
            assert not disjunct.variables()  # fully ground

    def test_connected_under_ucq_definition(self, paper_example):
        # Each disjunct has single-constant atoms: connectivity is judged
        # per disjunct; ground atoms share no *variables*, so the trivial
        # union is disconnected and already ruled out by line 13.
        trivial = trivial_union_query(paper_example)
        assert not is_connected(trivial)

    def test_require_variable_excludes_ground_disjunct_shape(self, paper_db):
        """The CQ-level analogue: ground queries vanish from the candidate
        set when require_variable is on (the paper's UCQ adjustment)."""
        from repro.provenance.kexample import KExample, KExampleRow

        example = KExample(
            [KExampleRow((1,), ["p1"]), KExampleRow((2,), ["p2"])],
            paper_db.registry,
        )
        default = consistent_queries(example)
        filtered = consistent_queries(
            example, ConsistencyConfig(require_variable=True)
        )
        assert all(q.variables() for q in filtered)
        assert filtered <= default
