"""Tests for the query AST, parser, and canonicalization."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.query.ast import CQ, UCQ, Atom, Constant, Variable
from repro.query.parser import parse_cq, parse_ucq


class TestTerms:
    def test_variable_equality(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")
        assert Variable("x") != Constant("x")

    def test_constant_values(self):
        assert Constant(1) != Constant("1")
        assert Constant("Dance").value == "Dance"


class TestAtom:
    def test_fields(self):
        atom = Atom("R", [Variable("x"), Constant(5)])
        assert atom.relation == "R"
        assert atom.arity == 2
        assert atom.variables() == frozenset({Variable("x")})
        assert atom.constants() == frozenset({Constant(5)})

    def test_substitute(self):
        atom = Atom("R", [Variable("x"), Variable("y")])
        sub = atom.substitute({Variable("x"): Constant(1)})
        assert sub == Atom("R", [Constant(1), Variable("y")])

    def test_rejects_non_terms(self):
        with pytest.raises(TypeError):
            Atom("R", ["x"])  # type: ignore[list-item]


class TestCQ:
    def test_head_variable_must_be_bound(self):
        with pytest.raises(ParseError):
            CQ(Atom("Q", [Variable("z")]), [Atom("R", [Variable("x")])])

    def test_empty_body_rejected(self):
        with pytest.raises(ParseError):
            CQ(Atom("Q", [Constant(1)]), [])

    def test_constant_head_is_fine(self):
        cq = CQ(Atom("Q", [Constant(1)]), [Atom("R", [Variable("x")])])
        assert cq.head.terms == (Constant(1),)

    def test_equality_ignores_body_order(self):
        a1 = Atom("R", [Variable("x")])
        a2 = Atom("S", [Variable("x")])
        q1 = CQ(Atom("Q", [Variable("x")]), [a1, a2])
        q2 = CQ(Atom("Q", [Variable("x")]), [a2, a1])
        assert q1 == q2
        assert hash(q1) == hash(q2)

    def test_num_joins_counts_join_graph_edges(self):
        cq = parse_cq("Q(x) :- R(x, y), S(y, z), T(w)")
        assert cq.num_joins() == 1  # only R-S share a variable; T isolated

    def test_relations_sorted_with_repeats(self):
        cq = parse_cq("Q(x) :- S(x), R(x), R(x)")
        assert cq.relations() == ("R", "R", "S")

    def test_rename_apart(self):
        cq = parse_cq("Q(x) :- R(x, y)")
        renamed = cq.rename_apart("_0")
        assert Variable("x_0") in renamed.variables()
        assert renamed.variables().isdisjoint(cq.variables())


class TestCanonical:
    def test_isomorphic_queries_share_canonical(self):
        q1 = parse_cq("Q(x) :- R(x, y), S(y, 'c')")
        q2 = parse_cq("Q(u) :- R(u, v), S(v, 'c')")
        assert q1.canonical() == q2.canonical()

    def test_body_order_is_irrelevant(self):
        q1 = parse_cq("Q(x) :- R(x, y), S(y)")
        q2 = parse_cq("Q(x) :- S(y), R(x, y)")
        assert q1.canonical() == q2.canonical()

    def test_different_join_structure_distinguished(self):
        q1 = parse_cq("Q(x) :- R(x, y), S(y)")
        q2 = parse_cq("Q(x) :- R(x, y), S(x)")
        assert q1.canonical() != q2.canonical()

    def test_different_constants_distinguished(self):
        q1 = parse_cq("Q(x) :- R(x, 'a')")
        q2 = parse_cq("Q(x) :- R(x, 'b')")
        assert q1.canonical() != q2.canonical()

    def test_self_join_symmetry(self):
        q1 = parse_cq("Q(x) :- R(x, y), R(x, z), S(y, 'c')")
        q2 = parse_cq("Q(x) :- R(x, z), R(x, y), S(z, 'c')")
        assert q1.canonical() == q2.canonical()

    @given(st.randoms(use_true_random=False))
    def test_random_renaming_preserves_canonical(self, rng: random.Random):
        query = parse_cq(
            "Q(a) :- Person(a, b, c), Hobbies(a, 'Dance', d), Interests(a, e, f)"
        )
        names = [v.name for v in query.variables()]
        shuffled = list(names)
        rng.shuffle(shuffled)
        mapping = {
            Variable(old): Variable("fresh_" + new)
            for old, new in zip(names, shuffled)
        }
        renamed = query.substitute(mapping)
        assert renamed.canonical() == query.canonical()


class TestUCQ:
    def test_single_cq(self):
        ucq = parse_ucq("Q(x) :- R(x)")
        assert ucq.is_single_cq()

    def test_union_parsing(self):
        ucq = parse_ucq("Q(x) :- R(x); Q(y) :- S(y)")
        assert len(ucq.disjuncts) == 2

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ParseError):
            parse_ucq("Q(x) :- R(x); Q(y, z) :- S(y, z)")

    def test_equality_ignores_disjunct_order(self):
        u1 = parse_ucq("Q(x) :- R(x); Q(y) :- S(y)")
        u2 = parse_ucq("Q(y) :- S(y); Q(x) :- R(x)")
        assert u1 == u2


class TestParser:
    def test_round_trip_structure(self):
        cq = parse_cq("Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', s)")
        assert cq.head == Atom("Q", [Variable("id")])
        assert len(cq.body) == 2
        assert Constant("Dance") in cq.body[1].constants()

    def test_numeric_constants(self):
        cq = parse_cq("Q(x) :- R(x, 42, 1.5)")
        constants = {c.value for c in cq.body[0].constants()}
        assert constants == {42, 1.5}

    def test_negative_number(self):
        cq = parse_cq("Q(x) :- R(x, -3)")
        assert Constant(-3) in cq.body[0].constants()

    def test_double_quoted_strings(self):
        cq = parse_cq('Q(x) :- R(x, "hello world")')
        assert Constant("hello world") in cq.body[0].constants()

    def test_whitespace_insensitive(self):
        assert parse_cq("Q(x):-R(x,y)") == parse_cq("Q( x ) :- R( x , y )")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_cq("Q(x) :- R(x) @@@")

    def test_missing_body_rejected(self):
        with pytest.raises(ParseError):
            parse_cq("Q(x)")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ParseError):
            parse_cq("Q(x :- R(x)")

    def test_trailing_disjunct_rejected(self):
        with pytest.raises(ParseError):
            parse_ucq("Q(x) :- R(x);")
