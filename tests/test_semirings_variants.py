"""Tests for the coarser semirings and the coarsening homomorphisms."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SemiringError
from repro.semirings.base import SemiringName, coarsen, get_semiring
from repro.semirings.polynomial import Monomial, Polynomial
from repro.semirings.variants import BPolynomial, Lineage, PosBool, Trio, Why

variables = st.sampled_from(["a", "b", "c", "d"])
monomials = st.dictionaries(
    variables, st.integers(min_value=1, max_value=3), max_size=3
).map(Monomial)
polynomials = st.lists(
    st.tuples(monomials, st.integers(min_value=1, max_value=2)),
    max_size=3,
).map(lambda pairs: Polynomial({m: c for m, c in pairs}))


def _poly(*monos: Monomial) -> Polynomial:
    return Polynomial.from_monomials(monos)


class TestBPolynomial:
    def test_drops_coefficients_keeps_exponents(self):
        poly = Polynomial({Monomial({"a": 2}): 5})
        b = BPolynomial.from_polynomial(poly)
        assert b.monomials == frozenset({Monomial({"a": 2})})

    def test_addition_is_union(self):
        x = BPolynomial((Monomial.of("a"),))
        y = BPolynomial((Monomial.of("b"),))
        assert (x + y).monomials == frozenset({Monomial.of("a"), Monomial.of("b")})

    def test_idempotent_addition(self):
        x = BPolynomial((Monomial.of("a"),))
        assert x + x == x

    def test_multiplication_cross_products(self):
        x = BPolynomial((Monomial.of("a"),))
        y = BPolynomial((Monomial.of("b"), Monomial.of("c")))
        assert (x * y).monomials == frozenset(
            {Monomial.of("a", "b"), Monomial.of("a", "c")}
        )

    def test_natural_order_is_inclusion(self):
        small = BPolynomial((Monomial.of("a"),))
        large = BPolynomial((Monomial.of("a"), Monomial.of("b")))
        assert small <= large
        assert not (large <= small)


class TestTrio:
    def test_drops_exponents_keeps_coefficients(self):
        poly = Polynomial({Monomial({"a": 2, "b": 1}): 3})
        trio = Trio.from_polynomial(poly)
        assert trio.terms == ((frozenset({"a", "b"}), 3),)

    def test_merges_monomials_with_same_support(self):
        poly = _poly(Monomial({"a": 2}), Monomial({"a": 1}))
        trio = Trio.from_polynomial(poly)
        assert trio.terms == ((frozenset({"a"}), 2),)

    def test_addition_adds_coefficients(self):
        t = Trio({frozenset({"a"}): 1})
        assert (t + t).terms == ((frozenset({"a"}), 2),)

    def test_multiplication_unions_witnesses(self):
        t1 = Trio({frozenset({"a"}): 2})
        t2 = Trio({frozenset({"b"}): 3})
        assert (t1 * t2).terms == ((frozenset({"a", "b"}), 6),)

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError):
            Trio({frozenset({"a"}): -1})

    def test_natural_order(self):
        small = Trio({frozenset({"a"}): 1})
        large = Trio({frozenset({"a"}): 2, frozenset({"b"}): 1})
        assert small <= large


class TestWhy:
    def test_drops_everything_but_witnesses(self):
        poly = Polynomial({Monomial({"a": 2, "b": 1}): 7})
        why = Why.from_polynomial(poly)
        assert why.witnesses == frozenset({frozenset({"a", "b"})})

    def test_keeps_subsumed_witnesses(self):
        poly = _poly(Monomial.of("a"), Monomial.of("a", "b"))
        why = Why.from_polynomial(poly)
        assert len(why.witnesses) == 2

    def test_addition_unions(self):
        w1 = Why((frozenset({"a"}),))
        w2 = Why((frozenset({"b"}),))
        assert len((w1 + w2).witnesses) == 2

    def test_multiplication_pairwise_union(self):
        w1 = Why((frozenset({"a"}), frozenset({"b"})))
        w2 = Why((frozenset({"c"}),))
        assert (w1 * w2).witnesses == frozenset(
            {frozenset({"a", "c"}), frozenset({"b", "c"})}
        )


class TestPosBool:
    def test_absorbs_subsumed_witnesses(self):
        poly = _poly(Monomial.of("a"), Monomial.of("a", "b"))
        pb = PosBool.from_polynomial(poly)
        assert pb.witnesses == frozenset({frozenset({"a"})})

    def test_incomparable_witnesses_kept(self):
        pb = PosBool((frozenset({"a"}), frozenset({"b"})))
        assert len(pb.witnesses) == 2

    def test_multiplication_then_absorption(self):
        pb1 = PosBool((frozenset({"a"}), frozenset({"b"})))
        pb2 = PosBool((frozenset({"a"}),))
        # (a + b) * a = a (absorption)
        assert (pb1 * pb2).witnesses == frozenset({frozenset({"a"})})

    def test_natural_order_by_implication(self):
        smaller = PosBool((frozenset({"a", "b"}),))
        larger = PosBool((frozenset({"a"}),))
        assert smaller <= larger
        assert not (larger <= smaller)


class TestLineage:
    def test_flattens_to_variable_set(self):
        poly = _poly(Monomial.of("a", "b"), Monomial.of("c"))
        lin = Lineage.from_polynomial(poly)
        assert lin.variables_set == frozenset({"a", "b", "c"})

    def test_zero_is_absorbing(self):
        assert Lineage.zero() * Lineage(("a",)) == Lineage.zero()

    def test_one_is_identity(self):
        lin = Lineage(("a",))
        assert Lineage.one() * lin == lin

    def test_natural_order_is_containment(self):
        assert Lineage(("a",)) <= Lineage(("a", "b"))
        assert Lineage.zero() <= Lineage(("a",))

    def test_zero_distinct_from_one(self):
        assert Lineage.zero() != Lineage.one()


class TestRegistryAndCoarsen:
    def test_get_semiring_by_value_and_name(self):
        assert get_semiring("Why(X)").name is SemiringName.WHY
        assert get_semiring("why").name is SemiringName.WHY
        assert get_semiring(SemiringName.NX).name is SemiringName.NX

    def test_unknown_semiring_raises(self):
        with pytest.raises(SemiringError):
            get_semiring("Fancy(X)")

    def test_coarsen_monomial(self):
        why = coarsen(Monomial.of("a", "b"), "Why(X)")
        assert why.witnesses == frozenset({frozenset({"a", "b"})})

    def test_coarsen_rejects_foreign_values(self):
        with pytest.raises(SemiringError):
            coarsen(Why((frozenset({"a"}),)), "B[X]")  # type: ignore[arg-type]

    def test_drops_exponents_flags(self):
        assert not get_semiring("N[X]").drops_exponents()
        assert not get_semiring("B[X]").drops_exponents()
        assert get_semiring("Why(X)").drops_exponents()
        assert get_semiring("Trio(X)").drops_exponents()
        assert get_semiring("PosBool(X)").drops_exponents()

    def test_drops_coefficients_flags(self):
        assert not get_semiring("N[X]").drops_coefficients()
        assert get_semiring("B[X]").drops_coefficients()

    @pytest.mark.parametrize("name", list(SemiringName))
    def test_identities(self, name):
        ops = get_semiring(name)
        value = ops.from_polynomial(Polynomial.variable("a"))
        assert ops.add(value, ops.zero) == value
        assert ops.mul(value, ops.one) == value
        assert ops.mul(value, ops.zero) == ops.zero

    @pytest.mark.parametrize("name", list(SemiringName))
    @given(p=polynomials, q=polynomials)
    def test_coarsening_is_a_homomorphism(self, name, p, q):
        ops = get_semiring(name)
        assert ops.from_polynomial(p + q) == ops.add(
            ops.from_polynomial(p), ops.from_polynomial(q)
        )
        assert ops.from_polynomial(p * q) == ops.mul(
            ops.from_polynomial(p), ops.from_polynomial(q)
        )

    @pytest.mark.parametrize("name", list(SemiringName))
    @given(p=polynomials, q=polynomials)
    def test_coarsening_preserves_natural_order(self, name, p, q):
        # a <= a + b must survive coarsening (monotone homomorphism).
        ops = get_semiring(name)
        assert ops.leq(ops.from_polynomial(p), ops.from_polynomial(p + q))
