"""Budget exhaustion paths of Algorithm 2 and Algorithm 1.

The optimizer has three safety valves: a candidate budget
(``max_candidates``), a wall-clock budget (``max_seconds``), and — inside
the privacy computation — a concretization budget
(``PrivacyConfig.max_concretizations``).  Each must degrade gracefully:
return the best abstraction found so far (or a not-found result), never
raise out of ``find_optimal_abstraction``.
"""

import math

import pytest

from repro.abstraction.function import AbstractionFunction
from repro.core.dual import find_dual_optimal_abstraction
from repro.core.optimizer import OptimizerConfig, find_optimal_abstraction
from repro.core.privacy import PrivacyComputer, PrivacyConfig
from repro.errors import OptimizationError


class TestCandidateBudget:
    def test_zero_budget_returns_not_found(self, paper_example, paper_tree):
        result = find_optimal_abstraction(
            paper_example, paper_tree, threshold=2,
            config=OptimizerConfig(max_candidates=0),
        )
        assert not result.found
        assert result.function is None
        assert result.abstracted is None
        assert result.privacy == -1
        assert math.isinf(result.loi)
        # Reported effort equals work done: nothing was evaluated.
        assert result.stats.candidates_scanned == 0

    def test_budget_keeps_best_so_far(self, paper_example, paper_tree):
        """With room to find the k=1 optimum (the identity) but not to
        finish the scan, the incumbent is still returned."""
        result = find_optimal_abstraction(
            paper_example, paper_tree, threshold=1,
            config=OptimizerConfig(max_candidates=2),
        )
        assert result.found
        assert result.loi == 0.0

    @pytest.mark.parametrize("budget", [1, 3, 7])
    def test_exhausted_budget_counts_exactly(
        self, paper_example, paper_tree, budget
    ):
        """When the budget trips, candidates_scanned == max_candidates —
        the popped-but-unevaluated candidate is not reported as effort."""
        for incremental in (True, False):
            result = find_optimal_abstraction(
                paper_example, paper_tree, threshold=2,
                config=OptimizerConfig(
                    max_candidates=budget, incremental=incremental
                ),
            )
            assert result.stats.candidates_scanned == budget

    @pytest.mark.parametrize("budget", [0, 1, 5])
    def test_dual_budget_counts_exactly(self, paper_example, paper_tree, budget):
        result = find_dual_optimal_abstraction(
            paper_example, paper_tree, max_loi=math.inf,
            config=OptimizerConfig(max_candidates=budget),
        )
        assert result.stats.candidates_scanned == budget

    def test_generous_budget_not_hit(self, paper_example, paper_tree):
        """A budget larger than the whole space leaves the scan untouched."""
        bounded = find_optimal_abstraction(
            paper_example, paper_tree, threshold=2,
            config=OptimizerConfig(max_candidates=100_000),
        )
        unbounded = find_optimal_abstraction(
            paper_example, paper_tree, threshold=2,
        )
        assert (
            bounded.stats.candidates_scanned
            == unbounded.stats.candidates_scanned
        )
        assert bounded.stats.candidates_scanned < 100_000


class TestTimeBudget:
    def test_zero_seconds_stops_immediately(self, paper_example, paper_tree):
        result = find_optimal_abstraction(
            paper_example, paper_tree, threshold=2,
            config=OptimizerConfig(max_seconds=0.0),
        )
        assert not result.found
        assert result.stats.candidates_scanned == 0
        assert result.stats.privacy_computations == 0
        assert result.stats.elapsed_seconds > 0.0

    def test_dual_zero_seconds_stops_immediately(
        self, paper_example, paper_tree
    ):
        result = find_dual_optimal_abstraction(
            paper_example, paper_tree, max_loi=math.inf,
            config=OptimizerConfig(max_seconds=0.0),
        )
        assert not result.found
        assert result.stats.candidates_scanned == 0
        assert result.stats.privacy_computations == 0

    def test_unbounded_by_default(self, paper_example, paper_tree):
        config = OptimizerConfig()
        assert config.max_seconds is None
        assert config.max_candidates is None


class TestPrivacyConcretizationBudget:
    def test_exhaustion_is_counted_and_survived(self, paper_example, paper_tree):
        """A tiny concretization budget makes every proper abstraction
        unevaluable; the search skips them (counting each exhaustion) and
        reports not-found instead of raising."""
        result = find_optimal_abstraction(
            paper_example, paper_tree, threshold=2,
            config=OptimizerConfig(
                privacy=PrivacyConfig(max_concretizations=1),
            ),
        )
        assert not result.found
        assert result.stats.privacy_budget_exhausted > 0
        assert result.stats.privacy_computations >= result.stats.privacy_budget_exhausted

    def test_computer_raises_directly(self, paper_example, paper_tree):
        computer = PrivacyComputer(
            paper_tree, paper_example.registry,
            PrivacyConfig(max_concretizations=1),
        )
        function = AbstractionFunction.uniform(
            paper_tree, paper_example, {"h1": "Facebook", "h2": "LinkedIn"}
        )
        with pytest.raises(OptimizationError):
            computer.compute(function.apply(paper_example), threshold=2)

    def test_generous_budget_unaffected(self, paper_example, paper_tree):
        tight = find_optimal_abstraction(
            paper_example, paper_tree, threshold=2,
            config=OptimizerConfig(
                privacy=PrivacyConfig(max_concretizations=200_000),
            ),
        )
        assert tight.found
        assert tight.stats.privacy_budget_exhausted == 0
        assert tight.loi == pytest.approx(math.log(15))
