"""Tests for the long-lived job service (repro.service).

The execution-behavior tests run parameterized over both executor
backends (``thread`` and ``process``): queueing, cancellation, timeout
clamps, backpressure, failure reporting, and the stats counters must be
indistinguishable across the tier.
"""

import threading

import pytest

from repro.batch import InlineContext, InlineJob, job_from_spec
from repro.core.optimizer import OptimizerConfig, find_optimal_abstraction
from repro.errors import JobSpecError, ServiceError
from repro.examples_data import running_example_db, running_example_tree
from repro.io.json_io import database_to_json, tree_to_json
from repro.provenance.builder import build_kexample
from repro.query.parser import parse_cq
from repro.service import (
    LOCAL_EXECUTOR_NAMES,
    JOB_CANCELLED,
    JOB_DONE,
    JOB_QUEUED,
    JobService,
    ProcessPoolBackend,
    ServiceClient,
    make_server,
)
from repro.store import JobStore


@pytest.fixture(params=LOCAL_EXECUTOR_NAMES)
def executor(request):
    """Every execution-behavior test runs once per local backend.

    The ``remote`` tier needs fleet workers on the other side and is
    exercised by tests/test_fleet.py instead.
    """
    return request.param


@pytest.fixture
def make_service(executor):
    """A ``JobService`` factory bound to the parameterized backend.

    Shuts every created service down at teardown so process pools never
    leak across tests.
    """
    services = []

    def factory(**kwargs):
        kwargs.setdefault("worker_threads", 0)
        service = JobService(executor=executor, **kwargs)
        services.append(service)
        return service

    yield factory
    for service in services:
        service.shutdown()

QUERY = (
    "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', s1),"
    " Interests(id, 'Music', s2)"
)


def inline_spec(threshold=2, n_rows=2, **extra):
    """An inline-context job spec over the paper's running example."""
    spec = {
        "database": database_to_json(running_example_db()),
        "tree": tree_to_json(running_example_tree()),
        "query": QUERY,
        "threshold": threshold,
        "n_rows": n_rows,
    }
    spec.update(extra)
    return spec


def direct_result(threshold=2, n_rows=2):
    """The same search run directly, as ``repro optimize`` would."""
    database = running_example_db()
    tree = running_example_tree()
    example = build_kexample(parse_cq(QUERY), database, n_rows=n_rows)
    return find_optimal_abstraction(example, tree, threshold), tree, example


class TestJobService:
    """The queue/worker core, driven synchronously (no worker threads).

    Parameterized over both executor backends via ``make_service``.
    """

    def test_submit_run_result_roundtrip(self, make_service):
        service = make_service(max_queue=8)
        ids = service.submit_specs([inline_spec(tag="r1")])
        assert service.status_payload(ids[0])["state"] == JOB_QUEUED
        assert service.run_next()
        assert not service.run_next()  # queue drained

        code, payload = service.result_payload(ids[0])
        assert code == 200
        assert payload["state"] == JOB_DONE
        assert payload["tag"] == "r1"
        assert payload["found"]

        direct, tree, example = direct_result()
        assert payload["privacy"] == direct.privacy
        assert payload["loi"] == direct.loi
        assert payload["edges_used"] == direct.edges_used
        # The inline path must rebuild the exact same optimal function.
        job = job_from_spec(inline_spec())
        from repro.batch.optimizer import run_job
        from repro.experiments.settings import DEFAULT_SETTINGS

        result = run_job(job, DEFAULT_SETTINGS)
        assert result.function(tree, example).assignment == \
            direct.function.assignment

    def test_result_conflict_while_queued(self, make_service):
        service = make_service(max_queue=8)
        ids = service.submit_specs([inline_spec()])
        code, payload = service.result_payload(ids[0])
        assert code == 409
        assert payload["state"] == JOB_QUEUED

    def test_queue_backpressure(self, make_service):
        service = make_service(max_queue=1)
        ids = service.submit_specs([inline_spec()])
        with pytest.raises(ServiceError, match="full"):
            service.submit_specs([inline_spec(threshold=3)])
        stats = service.stats_payload()
        assert stats["queue_depth"] == 1
        assert stats["jobs_submitted"] == 1  # the rejected job left no record
        # Cancelling a queued job frees its capacity slot immediately.
        assert service.cancel(ids[0]) is True
        replacement = service.submit_specs([inline_spec(threshold=4)])
        assert service.status_payload(replacement[0])["state"] == JOB_QUEUED

    def test_cancel_queued_job(self, make_service):
        service = make_service(max_queue=8)
        ids = service.submit_specs([inline_spec()])
        assert service.cancel(ids[0]) is True
        assert service.status_payload(ids[0])["state"] == JOB_CANCELLED
        assert service.cancel(ids[0]) is False  # already terminal
        # The stale queue entry is consumed without running anything.
        assert service.run_next()
        assert service.status_payload(ids[0])["state"] == JOB_CANCELLED
        code, payload = service.result_payload(ids[0])
        assert code == 200
        assert payload["state"] == JOB_CANCELLED
        assert "found" not in payload

    def test_sessions_reused_across_job_stream(self, make_service, executor):
        # A renamed query variable (unique per backend leg — fork-started
        # pool workers inherit this process's warm caches, so the legs
        # must not share a context) keeps the context cold: the first
        # job warms the session and the rest attach to it.
        query = QUERY.replace("name", f"nm_{executor}")
        service = make_service(max_queue=8)
        service.submit_specs([
            inline_spec(threshold=2, query=query),
            inline_spec(threshold=3, query=query),
        ])
        while service.run_next():
            pass
        stats = service.stats_payload()
        assert stats["jobs_done"] == 2
        assert stats["sessions_reused"] >= 1
        assert stats["candidates_scanned"] > 0

    def test_job_timeout_clamps_max_seconds(self):
        service = JobService(worker_threads=0, job_timeout=5.0)
        unbounded = job_from_spec(inline_spec())
        clamped = service._effective_job(unbounded)
        assert clamped.config.max_seconds == 5.0

        tighter = job_from_spec(inline_spec(max_seconds=1.0))
        assert service._effective_job(tighter).config.max_seconds == 1.0

        looser = job_from_spec(inline_spec(max_seconds=60.0))
        assert service._effective_job(looser).config.max_seconds == 5.0

        no_timeout = JobService(worker_threads=0)
        assert no_timeout._effective_job(unbounded) is unbounded

    def test_bad_spec_rejects_whole_batch(self, make_service):
        service = make_service(max_queue=8)
        with pytest.raises(JobSpecError, match="job 1.*treshold"):
            service.submit_specs([inline_spec(), {"treshold": 2}])
        assert service.stats_payload()["jobs_submitted"] == 0


class TestSpecValidation:
    def test_unknown_named_key(self):
        with pytest.raises(JobSpecError, match="treshold"):
            job_from_spec({"query_name": "TPCH-Q3", "treshold": 2})

    def test_unknown_inline_key(self):
        with pytest.raises(JobSpecError, match="databse"):
            job_from_spec({"databse": {}, "tree": {}, "threshold": 2,
                           "query": "Q(x) :- R(x)"})

    def test_missing_threshold(self):
        with pytest.raises(JobSpecError, match="threshold"):
            job_from_spec({"query_name": "TPCH-Q3"})

    def test_inline_needs_query_xor_kexample(self):
        base = {"database": {}, "tree": {}, "threshold": 2}
        with pytest.raises(JobSpecError, match="exactly one"):
            job_from_spec(base)
        with pytest.raises(JobSpecError, match="exactly one"):
            job_from_spec({**base, "query": "q", "kexample": {}})

    def test_spec_budgets_build_per_job_config(self):
        base = OptimizerConfig(max_candidates=1000, max_seconds=30.0)
        job = job_from_spec(
            {"query_name": "TPCH-Q3", "threshold": 2, "max_candidates": 5},
            base_config=base,
        )
        assert job.config.max_candidates == 5
        assert job.config.max_seconds == 30.0  # inherited from base

    def test_no_budget_keys_means_no_config(self):
        job = job_from_spec({"query_name": "TPCH-Q3", "threshold": 2})
        assert job.config is None

    def test_mistyped_threshold(self):
        with pytest.raises(JobSpecError, match="integer"):
            job_from_spec({"query_name": "TPCH-Q3", "threshold": "high"})

    def test_inline_content_hash_is_canonical(self):
        job_a = job_from_spec(inline_spec())
        job_b = job_from_spec(inline_spec())
        assert job_a.context.content_hash() == job_b.context.content_hash()
        other = job_from_spec(inline_spec(n_rows=3))
        assert other.context.content_hash() != job_a.context.content_hash()


@pytest.fixture
def http_service(executor):
    service = JobService(
        worker_threads=1, max_queue=16, executor=executor
    ).start()
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
    try:
        yield client, service
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown()


class TestHTTPService:
    """The HTTP layer end to end, over a live localhost server.

    The ``http_service`` fixture is parameterized over both executor
    backends, so every behavior here is asserted for each tier.
    """

    def test_submit_poll_result_roundtrip(self, http_service):
        client, _ = http_service
        ids = client.submit_many([inline_spec(tag="h1")])
        payload = client.wait(ids[0], timeout=60)
        assert payload["state"] == JOB_DONE
        assert payload["found"]
        direct, _, _ = direct_result()
        assert payload["privacy"] == direct.privacy
        assert payload["loi"] == direct.loi

    def test_second_stream_reports_sessions_reused(self, http_service):
        client, _ = http_service
        first = client.submit_many([inline_spec(threshold=2)])
        client.wait(first[0], timeout=60)
        second = client.submit_many([inline_spec(threshold=3)])
        payload = client.wait(second[0], timeout=60)
        assert payload["session_reused"] is True
        stats = client.stats()
        assert stats["sessions_reused"] >= 1
        assert stats["jobs_done"] == 2

    def test_named_workload_job_over_http(self, http_service):
        client, _ = http_service
        ids = client.submit_many([{
            "query_name": "TPCH-Q3", "threshold": 2,
            "max_candidates": 300, "max_seconds": 10, "tag": "named",
        }])
        payload = client.wait(ids[0], timeout=120)
        assert payload["state"] == JOB_DONE
        assert payload["error"] is None
        assert payload["stats"]["candidates_scanned"] > 0

    def test_unknown_job_is_404(self, http_service):
        client, _ = http_service
        with pytest.raises(ServiceError, match="404"):
            client.status("job-999999")
        with pytest.raises(ServiceError, match="404"):
            client.cancel("job-999999")

    def test_bad_spec_is_400_naming_the_key(self, http_service):
        # The wire error comes back as the same typed exception the
        # in-process submit raises, not a generic ServiceError.
        client, _ = http_service
        with pytest.raises(JobSpecError, match="treshold"):
            client.submit_many([{"query_name": "TPCH-Q3", "treshold": 2}])

    def test_cancel_endpoint_on_finished_job(self, http_service):
        client, _ = http_service
        ids = client.submit_many([inline_spec()])
        client.wait(ids[0], timeout=60)
        assert client.cancel(ids[0]) is False

    def test_health_stats_and_listing(self, http_service):
        client, _ = http_service
        assert client.health() == {"ok": True}
        ids = client.submit_many([inline_spec(tag="listed")])
        client.wait(ids[0], timeout=60)
        stats = client.stats()
        for key in ("uptime_seconds", "queue_depth", "queue_capacity",
                    "jobs_submitted", "jobs_done", "sessions_reused",
                    "candidates_scanned", "privacy_computations"):
            assert key in stats
        jobs = client.list_jobs()
        assert any(j["tag"] == "listed" for j in jobs)

    def test_multi_worker_same_context_stream(self, executor):
        """Concurrent workers racing on one cold context must not fail."""
        service = JobService(
            worker_threads=2, max_queue=16, executor=executor
        ).start()
        try:
            # A context unique to this backend leg (workers of either
            # tier must see it cold).
            query = QUERY.replace("name", f"label_{executor}")
            ids = service.submit_specs([
                inline_spec(threshold=k, query=query) for k in (2, 2, 3, 3)
            ])
            deadline = 60
            import time as _time
            start = _time.monotonic()
            while _time.monotonic() - start < deadline:
                states = {service.status_payload(i)["state"] for i in ids}
                if states <= {JOB_DONE, "failed"}:
                    break
                _time.sleep(0.05)
            payloads = [service.result_payload(i)[1] for i in ids]
            assert [p["state"] for p in payloads] == [JOB_DONE] * 4, payloads
            assert len({(p["privacy"], p["loi"]) for p in payloads
                        if p["threshold"] == 2}) == 1
        finally:
            service.shutdown()

    def test_failed_job_reported_not_crashing_service(self, http_service):
        client, _ = http_service
        ids = client.submit_many([{"query_name": "NO-SUCH-QUERY", "threshold": 2}])
        payload = client.wait(ids[0], timeout=60)
        assert payload["state"] == "failed"
        assert "NO-SUCH-QUERY" in payload["error"]
        assert client.stats()["jobs_failed"] == 1
        # The service keeps serving after a failure.
        ids = client.submit_many([inline_spec()])
        assert client.wait(ids[0], timeout=60)["state"] == JOB_DONE


class _WorkerKiller:
    """Unpickling this in a pool worker hard-exits the worker process."""

    def __reduce__(self):
        import os

        return (os._exit, (13,))


class TestExecutorTier:
    """Behaviors specific to the pluggable execution tier."""

    def test_unknown_executor_raises_named_error(self):
        with pytest.raises(ServiceError, match="unknown executor 'mpi'"):
            JobService(worker_threads=0, executor="mpi")

    def test_executor_surfaces_in_stats_and_status(self, make_service,
                                                   executor):
        service = make_service(max_queue=4)
        assert service.stats_payload()["executor"] == executor
        ids = service.submit_specs([inline_spec()])
        assert service.status_payload(ids[0])["executor"] is None  # queued
        service.run_next()
        assert service.status_payload(ids[0])["executor"] == executor

    def test_pool_failure_keeps_traceback_and_is_never_cached(self, tmp_path):
        """A job that raises in a pool worker crosses back as data.

        The error must reach ``/status`` with the traceback summary
        intact, and the result store must never learn about it — an
        errored search may be environmental and has to be retryable.
        """
        store = JobStore(str(tmp_path / "jobs.db"))
        service = JobService(worker_threads=0, executor="process",
                             store=store)
        try:
            ids = service.submit_specs(
                [{"query_name": "NO-SUCH-QUERY", "threshold": 2}]
            )
            service.run_next()
            payload = service.status_payload(ids[0])
            assert payload["state"] == "failed"
            assert "NO-SUCH-QUERY" in payload["error"]
            # The traceback summary: "[file.py:123 in func <- ...]".
            assert " in " in payload["error"]
            assert ".py:" in payload["error"]
            assert store.result_count() == 0
        finally:
            service.shutdown()

    def test_cross_process_cache_hits_through_shared_store(self, tmp_path):
        """Pool workers persist into the store; repeats never re-search."""
        store = JobStore(str(tmp_path / "jobs.db"))
        service = JobService(worker_threads=0, executor="process",
                             store=store)
        try:
            spec = inline_spec(query=QUERY.replace("name", "xproc"))
            first = service.submit_specs([spec])
            service.run_next()
            _, fresh = service.result_payload(first[0])
            assert fresh["state"] == JOB_DONE and not fresh["cache_hit"]
            # The *worker process* wrote the result into the SQLite file.
            assert store.result_count() == 1
            second = service.submit_specs([spec])
            service.run_next()
            _, hit = service.result_payload(second[0])
            assert hit["cache_hit"] is True
            assert service.stats_payload()["cache_hits"] == 1
            # Bit-identical payload, the audit flag aside.
            for key, value in fresh.items():
                if key not in ("id", "cache_hit"):
                    assert hit[key] == value, key
        finally:
            service.shutdown()

    def test_in_memory_store_still_caches_with_process_backend(self):
        """``:memory:`` cannot cross processes; the service covers it."""
        service = JobService(worker_threads=0, executor="process",
                             store=JobStore(":memory:"))
        try:
            spec = inline_spec(query=QUERY.replace("name", "xmem"))
            ids = service.submit_specs([spec, spec])
            while service.run_next():
                pass
            _, first = service.result_payload(ids[0])
            _, second = service.result_payload(ids[1])
            assert not first["cache_hit"]
            assert second["cache_hit"] is True
        finally:
            service.shutdown()

    def test_broken_pool_is_replaced_and_keeps_serving(self):
        """A worker-killing job fails after one retry; the pool self-heals.

        The job is retried once on a fresh pool (a pool breakage fails
        every in-flight future, so the retry is what keeps a neighbor's
        death from failing innocent jobs); a job that breaks two pools
        in a row fails visibly, and later jobs run on a healthy pool.
        """
        from repro.experiments.settings import DEFAULT_SETTINGS

        backend = ProcessPoolBackend(workers=1)
        try:
            dead = backend.run(_WorkerKiller(), DEFAULT_SETTINGS)
            assert not dead.ok
            assert "worker process died" in dead.error
            assert "twice" in dead.error
            assert backend.pools_replaced == 2  # original + retry pool
            alive = backend.run(job_from_spec(inline_spec()),
                                DEFAULT_SETTINGS)
            assert alive.ok and alive.found
        finally:
            backend.shutdown()

    def test_thread_and_process_outcomes_are_bit_identical(self):
        """Same spec stream, both tiers: payloads equal modulo timing.

        The process leg runs first so neither tier has seen the context
        before (fork-started workers inherit this process's caches —
        running the thread leg first would hand the pool a warm
        session and skew the effort counters).
        """
        specs = [
            inline_spec(threshold=k, query=QUERY.replace("name", "xsame"))
            for k in (2, 3)
        ]
        payloads = {}
        for executor in ("process", "thread"):
            service = JobService(worker_threads=0, executor=executor)
            try:
                ids = service.submit_specs(specs)
                while service.run_next():
                    pass
                payloads[executor] = [
                    service.result_payload(i)[1] for i in ids
                ]
            finally:
                service.shutdown()
        def normalized(payload):
            # Timing is the only legitimate difference between tiers:
            # the job-level seconds and the optimizer's elapsed_seconds
            # counter.  Everything else must match bit for bit.
            clean = {k: v for k, v in payload.items()
                     if k not in ("id", "seconds")}
            clean["stats"] = {k: v for k, v in payload["stats"].items()
                              if k != "elapsed_seconds"}
            return clean

        for via_process, via_thread in zip(payloads["process"],
                                           payloads["thread"]):
            assert normalized(via_process) == normalized(via_thread)

    def test_client_submit_takes_one_spec(self, http_service):
        client, _ = http_service
        job_id = client.submit(inline_spec(tag="single"))
        assert isinstance(job_id, str)
        assert client.wait(job_id, timeout=60)["state"] == JOB_DONE

    def test_client_submit_sequence_shim_warns(self, http_service):
        """The pre-v1 submit(sequence) convention still works, loudly."""
        client, _ = http_service
        with pytest.warns(DeprecationWarning, match="submit_many"):
            ids = client.submit([inline_spec(tag="shim")])
        assert len(ids) == 1
        assert client.wait(ids[0], timeout=60)["state"] == JOB_DONE


class TestClientStartupRetry:
    """`repro submit` right after `serve` must not lose the race."""

    def test_request_retries_until_server_is_up(self):
        # Reserve a port, then start listening only after a delay longer
        # than the first couple of backoff steps: without the retry the
        # first request dies on connection-refused.
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        service = JobService(worker_threads=0)
        started = {}

        def bind_late():
            started["server"] = make_server(service, "127.0.0.1", port)
            threading.Thread(
                target=started["server"].serve_forever, daemon=True
            ).start()

        timer = threading.Timer(0.4, bind_late)
        timer.start()
        client = ServiceClient(
            f"http://127.0.0.1:{port}",
            connect_retries=8, retry_backoff=0.1,
        )
        try:
            assert client.health() == {"ok": True}
        finally:
            timer.cancel()
            server = started.get("server")
            if server is not None:
                server.shutdown()
                server.server_close()

    def test_exhausted_retries_still_raise(self):
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        client = ServiceClient(
            f"http://127.0.0.1:{port}",
            connect_retries=1, retry_backoff=0.01,
        )
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()

    def test_http_errors_are_never_retried(self, http_service):
        import time as _time

        client, _ = http_service
        # A 404 is a server decision: it must surface on the first
        # attempt.  With this backoff, even one retry would sleep 10s.
        impatient = ServiceClient(
            client.base_url, connect_retries=5, retry_backoff=10.0,
        )
        start = _time.monotonic()
        with pytest.raises(ServiceError, match="404"):
            impatient.status("job-999999")
        assert _time.monotonic() - start < 5.0


class TestInlineEquivalence:
    """Inline jobs must match the optimize subcommand bit for bit."""

    def test_inline_job_matches_optimize_subcommand(self, tmp_path, capsys):
        import json as _json

        from repro.cli import main

        (tmp_path / "db.json").write_text(
            _json.dumps(database_to_json(running_example_db()))
        )
        (tmp_path / "tree.json").write_text(
            _json.dumps(tree_to_json(running_example_tree()))
        )
        code = main([
            "optimize",
            "--database", str(tmp_path / "db.json"),
            "--tree", str(tmp_path / "tree.json"),
            "--query", QUERY,
            "--threshold", "2",
            "--output", str(tmp_path / "direct.json"),
        ])
        assert code == 0
        capsys.readouterr()
        direct = _json.loads((tmp_path / "direct.json").read_text())

        service = JobService(worker_threads=0, max_queue=4)
        ids = service.submit_specs([inline_spec()])
        service.run_next()
        _, payload = service.result_payload(ids[0])
        assert payload["found"] == direct["found"]
        assert payload["privacy"] == direct["privacy"]
        assert payload["loi"] == direct["loss_of_information"]
        assert payload["edges_used"] == direct["edges_used"]

    def test_inline_from_objects_roundtrip(self):
        database = running_example_db()
        tree = running_example_tree()
        context = InlineContext.from_objects(
            database, tree, query=QUERY, n_rows=2
        )
        job = InlineJob(context=context, threshold=2)
        assert job.query_name.startswith("inline:")
        spec_job = job_from_spec(inline_spec())
        assert spec_job.context.content_hash() == context.content_hash()
