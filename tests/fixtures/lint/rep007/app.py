"""Fixture: raw monotonic-clock reads outside repro.obs (REP007)."""

import time
import time as _t
from time import monotonic, perf_counter


def measure(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def deadline_in(seconds):
    return time.monotonic() + seconds


def aliased():
    return _t.perf_counter_ns()


def from_imported():
    return perf_counter() - monotonic()
