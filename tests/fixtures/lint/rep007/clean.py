"""Fixture: sanctioned timing and wall-clock reads (not REP007's beat)."""

import time

from repro.obs import clock


def measure(fn):
    start = clock.perf_counter()
    fn()
    return clock.perf_counter() - start


def deadline_in(seconds):
    return clock.monotonic() + seconds


def stamp():
    # Wall clock is REP001's business, not the timing surface's
    # (fixtures analyze standalone, so every module is hash-feeding).
    return time.time()  # repro: allow[REP001]


def nap():
    time.sleep(0.01)
