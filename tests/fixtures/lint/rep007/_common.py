"""Fixture: the benchmark harness helper is exempt by module name."""

import time


def perf_counter():
    return time.perf_counter()


def monotonic():
    return time.monotonic()
