"""Fixture: an obs-package module owns the raw clock surface."""

import time


def origin():
    return time.perf_counter()
