"""Fixture: a deliberate raw clock read, suppressed with a reason."""

import time


def calibrate():
    # Measuring the clock itself; going through the alias would be circular.
    return time.perf_counter()  # repro: allow[REP007]
