"""Fixture: sanctioned relation access (no REP006 findings)."""


def annotations(db):
    return [t.annotation for t in db.scan("lineitem")]


def genre_rows(db, mid):
    return list(db.scan("genre", {0: mid}))


def cardinality(db, name):
    # len() is metadata, not a scan.
    return len(db.relation(name))


def attribute_names(database, relation):
    # schema.relation() returns arity metadata, not tuples.
    return database.schema.relation(relation).attributes
