"""Fixture: a deliberate raw read, suppressed with a reason."""


def debug_dump(db):
    # One-off diagnostic dump that must not depend on the engine layer.
    return list(db.relation("lineitem"))  # repro: allow[REP006]
