"""Fixture: engine-layer module — owns the raw relation surface (exempt)."""


def derivations(db, name, fixed):
    return list(db.relation(name).matching(fixed))
