"""Fixture: db-layer module — owns the raw relation surface (exempt)."""


def scan(self, relation, bindings=None):
    return self.relation(relation).matching(bindings or {})
