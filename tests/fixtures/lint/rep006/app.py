"""Fixture: raw relation reads outside the engine layer (REP006)."""


def action_movies(db, movies):
    return [
        mid for mid in movies
        if any(t.values[1] == "Action" for t in db.relation("genre").matching({0: mid}))
    ]


def annotations(db):
    return [t.annotation for t in db.relation("lineitem")]


def years(db):
    out = {}
    for tup in db.relation("movie"):
        out[tup.values[0]] = int(tup.values[2])
    return out


def snapshot(db, name):
    return list(db.relation(name))
