"""Fixture: a suppression that matches a real finding — fully clean."""


def noisy(seed=99):  # repro: allow[REP005]
    return seed
