"""Fixture: a suppression comment on a line with nothing to suppress."""


def add(a, b):
    return a + b  # repro: allow[REP001]
