"""Fixture: acceptable exception handling (no REP004 findings)."""

import logging
import sqlite3

log = logging.getLogger(__name__)


class ReproError(Exception):
    pass


class StoreError(ReproError):
    pass


def convert(fn):
    try:
        return fn()
    except sqlite3.Error as exc:  # third-party error: narrowing is enough
        raise StoreError(str(exc)) from exc


def count_failures(fn, stats):
    try:
        return fn()
    except ReproError:
        stats["failures"] += 1
        raise


def log_and_fall_back(fn):
    try:
        return fn()
    except ReproError as exc:
        log.warning("falling back: %s", exc)
        return None


def tolerate_missing_table(conn):
    try:
        return conn.execute("SELECT COUNT(*) FROM jobs").fetchone()[0]
    except sqlite3.OperationalError:
        return 0
