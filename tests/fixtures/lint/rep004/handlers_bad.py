"""Fixture: exception-hygiene violations (REP004)."""


class ReproError(Exception):
    pass


class ServiceError(ReproError):
    pass


def swallow_everything(fn):
    try:
        return fn()
    except:  # noqa: E722 — the whole point of this fixture
        pass


def swallow_repro_error(fn):
    try:
        return fn()
    except ReproError:
        pass


def swallow_tuple(fn):
    try:
        return fn()
    except (ValueError, ServiceError):
        pass


def swallow_broad(fn):
    try:
        return fn()
    except Exception:
        "nothing to see here"
