"""Fixture: a justified best-effort swallow, suppressed."""


class ReproError(Exception):
    pass


def best_effort_cleanup(fn):
    try:
        fn()
    except ReproError:  # repro: allow[REP004]
        pass
