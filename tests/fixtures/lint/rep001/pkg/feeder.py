"""Fixture feeder module: every REP001 violation class, one per line."""

import os
import random
import time
from datetime import datetime

from repro.obs import clock


def build_inputs(spec):
    stamp = time.time()
    today = datetime.now()
    jitter = random.random()
    rng = random.Random()
    salt = os.urandom(8)
    key = id(spec)
    return (stamp, today, jitter, rng.random(), salt, key)


def sanctioned(seed):
    rng = random.Random(seed)  # seeded constructor: allowed
    elapsed = clock.perf_counter()  # sanctioned duration clock
    audited = time.time()  # repro: allow[REP001]
    return rng.random() if elapsed or audited else None
