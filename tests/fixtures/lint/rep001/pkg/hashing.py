"""Fixture hash root: mirrors repro.store.hashing's lazy feeder import."""


def content_hash(spec):
    from pkg.feeder import build_inputs  # lazy, like the real tree

    return hash(repr(build_inputs(spec)))
