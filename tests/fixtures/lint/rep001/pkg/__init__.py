# Fixture package for REP001 reachability tests.
