"""Fixture module NOT imported by the hash root: wall-clock is fine here."""

import time


def measure():
    return time.time()
