"""Fixture: sanctioned seed defaults (no REP005 findings)."""

DEFAULT_SEED = 1


def sample_rows(database, n, seed=DEFAULT_SEED):
    return (database, n, seed)


def shuffle_questions(questions, *, seed=None):
    return (questions, seed)


def explicit_only(spec, seed):
    return (spec, seed)


def derived(spec, seed=DEFAULT_SEED + 0):
    return (spec, seed)


def unrelated(spec, seed_count=3):
    return (spec, seed_count)
