"""Fixture: seed parameters defaulting to ad-hoc literals (REP005)."""

MY_SEED = 7


def sample_rows(database, n, seed=0):
    return (database, n, seed)


def shuffle_questions(questions, *, seed=42):
    return (questions, seed)


class Harness:
    def __init__(self, seed=1):
        self.seed = seed

    def run(self, spec, seed=MY_SEED):
        return (spec, seed)
