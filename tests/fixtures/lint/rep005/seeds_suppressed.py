"""Fixture: a paper-mandated literal seed, suppressed with a reason."""


def replicate_figure_6(database, seed=1234):  # repro: allow[REP005]
    # The paper's published runs used seed 1234 for this figure.
    return (database, seed)
