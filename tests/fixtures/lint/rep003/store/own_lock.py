"""Fixture: a store serializing its own connection — the sanctioned pattern."""

import sqlite3
import threading


class MiniStore:
    def __init__(self, path):
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path)  # outside any lock

    def save(self, key, value):
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO kv VALUES (?, ?)", (key, value)
            )
            self._conn.commit()

    def load(self, key):
        with self._lock:
            row = self._conn.execute(
                "SELECT value FROM kv WHERE key = ?", (key,)
            ).fetchone()
        return row[0] if row else None
