"""Fixture: the sanctioned shape — state under the lock, I/O outside."""

import threading


class DisciplinedService:
    def __init__(self, store):
        self._lock = threading.Lock()
        self._store = store
        self._records = {}

    def submit(self, job_id, spec):
        with self._lock:
            self._records[job_id] = spec
            state = dict(spec)

            def flush():  # runs later, NOT under this lock
                self._store.record_job(job_id, state)

        self._store.record_job(job_id, state)
        return flush

    def stats(self):
        count = self._store.result_count()  # before taking the lock
        with self._lock:
            return {"results": count, "records": len(self._records)}
