"""Fixture: I/O performed while holding the service state lock."""

import sqlite3
import threading
import time
import urllib.request


class LeakyService:
    def __init__(self, store):
        self._lock = threading.Lock()
        self._store = store
        self._records = {}

    def submit(self, job_id, spec):
        with self._lock:
            self._records[job_id] = spec
            self._store.record_job(job_id, spec)
            conn = sqlite3.connect("jobs.db")
            with open("audit.log", "a") as handle:
                handle.write(job_id)
            urllib.request.urlopen("http://127.0.0.1/notify")
            time.sleep(0.1)
        return conn

    def cancel(self, job_id):
        with self._lock:
            # Sanctioned for this fixture: audited store read under lock.
            return self._store.get_job(job_id)  # repro: allow[REP003]
