"""Fixture: payload-parity violations (the historical cache_hit drift)."""


class DriftingResult:
    """to_payload writes own-state fields from_payload never reads."""

    def __init__(self, job):
        self.job = job
        self.found = False
        self.cache_hit = False
        self.session_reused = False

    def to_payload(self):
        return {
            "tag": self.job.tag,  # companion-object display field: exempt
            "found": self.found,
            "cache_hit": self.cache_hit,
            "session_reused": self.session_reused,
        }

    @classmethod
    def from_payload(cls, payload, job):
        result = cls(job)
        result.found = bool(payload.get("found", False))
        # cache_hit and session_reused are silently dropped here.
        return result


class OneWayTicket:
    """Defines to_payload with no from_payload at all."""

    def __init__(self):
        self.value = 1

    def to_payload(self):
        return {"value": self.value}
