"""Fixture: a deliberate one-way payload field, suppressed and justified."""


class AuditedDrop:
    def __init__(self):
        self.debug_note = ""

    def to_payload(self):
        return {
            # Emitted for human log readers only; never rebuilt.
            "debug_note": self.debug_note,  # repro: allow[REP002]
        }

    @classmethod
    def from_payload(cls, payload):
        return cls()
