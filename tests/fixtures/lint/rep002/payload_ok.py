"""Fixture: lossless payload round trips (no REP002 findings)."""

import math


class LosslessResult:
    def __init__(self, job):
        self.job = job
        self.found = False
        self.loi = math.inf
        self.cache_hit = False

    def to_payload(self):
        payload = {
            "query_name": self.job.query_name,  # from the companion job
            "threshold": self.job.threshold,
            "found": self.found,
            "loi": self.loi if math.isfinite(self.loi) else None,
        }
        payload["cache_hit"] = self.cache_hit
        return payload

    @classmethod
    def from_payload(cls, payload, job):
        result = cls(job)
        result.found = bool(payload.get("found", False))
        loi = payload.get("loi")
        result.loi = math.inf if loi is None else loi
        result.cache_hit = bool(payload["cache_hit"])
        return result


class NoPayloadAtAll:
    """Classes without to_payload are out of scope."""

    def to_dict(self):
        return {"x": 1}
