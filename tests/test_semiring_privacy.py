"""Privacy computation across the semiring hierarchy (Table 4).

Coarser provenance admits at least as many consistent queries, so privacy
under a coarser semiring can only grow or stay equal — the paper's core
argument for why less-detailed semirings are *not* a substitute for
abstraction ([23]'s finding, recalled in Related Work).
"""

import pytest

from repro.abstraction.function import AbstractionFunction
from repro.core.consistency import ConsistencyConfig
from repro.core.privacy import PrivacyComputer, PrivacyConfig
from repro.semirings.base import SemiringName


def _computer(tree, registry, semiring, reuse=1):
    return PrivacyComputer(
        tree, registry,
        PrivacyConfig(
            consistency=ConsistencyConfig(
                semiring=semiring, max_tuple_reuse=reuse
            )
        ),
    )


class TestSemiringPrivacy:
    @pytest.mark.parametrize("semiring", [
        SemiringName.NX, SemiringName.BX, SemiringName.TRIO,
        SemiringName.WHY, SemiringName.POSBOOL,
    ])
    def test_raw_example_identifiable_in_every_semiring(
        self, paper_tree, paper_db, paper_example, semiring
    ):
        """[23]'s finding: dropping to a coarser semiring alone does not
        hide Q_real on the running example (its rows have no repeated
        tuples, so the views coincide)."""
        computer = _computer(paper_tree, paper_db.registry, semiring)
        identity = AbstractionFunction.identity(
            paper_tree, paper_example
        ).apply(paper_example)
        assert computer.privacy(identity) == 1

    def test_why_with_reuse_no_less_private_than_nx(
        self, paper_tree, paper_db, paper_example
    ):
        nx = _computer(paper_tree, paper_db.registry, SemiringName.NX)
        why = _computer(
            paper_tree, paper_db.registry, SemiringName.WHY, reuse=2
        )
        abstracted = AbstractionFunction.uniform(
            paper_tree, paper_example, {"h1": "Facebook", "h2": "LinkedIn"}
        ).apply(paper_example)
        assert why.privacy(abstracted) >= nx.privacy(abstracted)

    def test_abstraction_still_needed_under_why(
        self, paper_tree, paper_db, paper_example
    ):
        """Even in Why(X), meeting k=2 on the running example requires an
        actual abstraction, echoing the paper's motivation."""
        computer = _computer(
            paper_tree, paper_db.registry, SemiringName.WHY
        )
        identity = AbstractionFunction.identity(
            paper_tree, paper_example
        ).apply(paper_example)
        assert computer.compute(identity, threshold=2) == -1
