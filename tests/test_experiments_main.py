"""Tests for the experiments CLI (python -m repro.experiments.main)."""

import pytest

from repro.experiments.main import RUNNERS, main
from repro.experiments import settings as settings_module
from repro.experiments.settings import ExperimentSettings


@pytest.fixture
def tiny_profile(monkeypatch):
    """Swap the CLI's 'fast' profile for a seconds-scale one."""
    tiny = ExperimentSettings(
        privacy_threshold=2,
        thresholds=(2,),
        tree_sizes=(20,),
        tree_heights=(3,),
        row_counts=(2,),
        tree_leaves=20,
        tpch_scale=0.015,
        imdb_people=50,
        imdb_movies=30,
        max_candidates=120,
        max_seconds=3.0,
    )
    monkeypatch.setattr("repro.experiments.main.FAST_SETTINGS", tiny)
    return tiny


class TestMain:
    def test_runner_table_is_complete(self):
        # Figures 9-19 plus the two extra studies.
        for key in [str(i) for i in range(9, 20)] + ["dist", "dual"]:
            assert key in RUNNERS

    def test_single_figure_run(self, tiny_profile, capsys):
        main(["--figures", "11", "--queries", "TPCH-Q3"])
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "TPCH-Q3" in out
        assert "Table 6" in out

    def test_unknown_figure_rejected(self, tiny_profile):
        with pytest.raises(SystemExit):
            main(["--figures", "99"])
