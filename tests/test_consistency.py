"""Tests for consistent-query generation (the adapted FindConsistentQuery)."""

import pytest

from repro.core.consistency import ConsistencyConfig, consistent_queries
from repro.db.database import KDatabase
from repro.db.schema import Schema
from repro.provenance.kexample import KExample, KExampleRow
from repro.query.containment import is_equivalent
from repro.query.join_graph import is_connected
from repro.semirings.base import SemiringName
from repro.examples_data import Q_FALSE_1, Q_REAL


class TestRunningExample:
    def test_real_example_yields_qreal(self, paper_example):
        queries = consistent_queries(paper_example)
        assert any(is_equivalent(q, Q_REAL) for q in queries)

    def test_real_example_is_unambiguous(self, paper_example):
        """Only Q_real is CIM for the raw example: all generated connected
        queries contain it."""
        queries = [q for q in consistent_queries(paper_example) if is_connected(q)]
        assert queries
        from repro.query.containment import is_contained_in

        assert all(is_contained_in(Q_REAL, q) for q in queries)

    def test_concretization_of_exfalse1_yields_qfalse1(self, paper_db):
        """The K-example of Figure 2b admits Q_false_1."""
        rows = [
            KExampleRow((1,), ["p1", "h4", "i1"]),
            KExampleRow((2,), ["p2", "h5", "i2"]),
        ]
        example = KExample(rows, paper_db.registry)
        queries = consistent_queries(example)
        assert any(is_equivalent(q, Q_FALSE_1) for q in queries)

    def test_head_name_config(self, paper_example):
        queries = consistent_queries(
            paper_example, ConsistencyConfig(head_name="T")
        )
        assert all(q.head.relation == "T" for q in queries)


class TestAlignments:
    @pytest.fixture
    def db(self):
        db = KDatabase(Schema.from_dict({"R": ["a", "b"], "S": ["x", "y"]}))
        db.insert("R", (1, 10), "r1")
        db.insert("R", (2, 20), "r2")
        db.insert("R", (1, 30), "r3")
        db.insert("S", (10, 5), "s1")
        db.insert("S", (20, 5), "s2")
        return db

    def test_join_recovered(self, db):
        """Rows joined on R.b = S.x produce a query with that join."""
        example = KExample(
            [
                KExampleRow((1,), ["r1", "s1"]),
                KExampleRow((2,), ["r2", "s2"]),
            ],
            db.registry,
        )
        queries = consistent_queries(example)
        joined = [q for q in queries if is_connected(q) and len(q.body) == 2]
        assert joined
        # The most specific query keeps the S.y constant 5.
        assert any(q.constants() for q in joined)

    def test_mismatched_relations_give_nothing(self, db):
        example = KExample(
            [
                KExampleRow((1,), ["r1", "s1"]),
                KExampleRow((2,), ["r2", "r3"]),
            ],
            db.registry,
        )
        assert consistent_queries(example) == frozenset()

    def test_output_not_derivable_gives_nothing(self, db):
        example = KExample(
            [
                KExampleRow((777,), ["r1", "s1"]),
                KExampleRow((888,), ["r2", "s2"]),
            ],
            db.registry,
        )
        assert consistent_queries(example) == frozenset()

    def test_constant_output_uses_head_constant(self, db):
        example = KExample(
            [
                KExampleRow((777,), ["r1", "s1"]),
                KExampleRow((777,), ["r2", "s2"]),
            ],
            db.registry,
        )
        queries = consistent_queries(example)
        assert queries
        assert all(
            q.head.terms[0].value == 777 for q in queries  # type: ignore[union-attr]
        )

    def test_self_join_alignments(self, db):
        """Two R atoms per row: both alignments are explored."""
        example = KExample(
            [
                KExampleRow((1,), ["r1", "r3"]),
                KExampleRow((1,), ["r1", "r3"]),
            ],
            db.registry,
        )
        queries = consistent_queries(example)
        assert queries
        assert all(sorted(a.relation for a in q.body) == ["R", "R"] for q in queries)

    def test_single_row_example(self, db):
        example = KExample([KExampleRow((1,), ["r1"])], db.registry)
        queries = consistent_queries(example)
        assert queries
        # The fully-ground query R(1, 10) with head 1 is among them.
        assert any(not q.variables() for q in queries)


class TestFlips:
    @pytest.fixture
    def db(self):
        db = KDatabase(Schema.from_dict({"R": ["a"], "S": ["b"]}))
        db.insert("R", (7,), "r1")
        db.insert("R", (8,), "r2")
        db.insert("S", (7,), "s1")
        db.insert("S", (8,), "s2")
        return db

    def test_flip_connects_constant_join(self, db):
        """R(7), S(7) / R(8), S(8): the value-equal columns merge into a
        shared variable, producing a *connected* consistent query."""
        example = KExample(
            [
                KExampleRow((7,), ["r1", "s1"]),
                KExampleRow((8,), ["r2", "s2"]),
            ],
            db.registry,
        )
        queries = consistent_queries(example)
        connected = [q for q in queries if is_connected(q)]
        assert connected
        assert any(len(q.body) == 2 for q in connected)

    def test_single_row_flip_connects(self, db):
        """Single row R(7), S(7): the base query keeps both constants and is
        disconnected; flipping the constant class to a shared variable
        yields the connected Q :- R(x), S(x)."""
        example = KExample([KExampleRow((7,), ["r1", "s1"])], db.registry)
        queries = consistent_queries(example)
        base = [q for q in queries if not q.variables()]
        flipped = [q for q in queries if is_connected(q) and q.variables()]
        assert base, "the fully-ground base query must be generated"
        assert any(
            len(q.body) == 2 and len(q.variables()) == 1 for q in flipped
        ), "the constant-flip variant must connect the query"

    def test_require_variable_drops_ground_queries(self, db):
        example = KExample([KExampleRow((7,), ["r1"])], db.registry)
        with_ground = consistent_queries(example)
        without = consistent_queries(
            example, ConsistencyConfig(require_variable=True)
        )
        assert any(not q.variables() for q in with_ground)
        assert all(q.variables() for q in without)
        assert without < with_ground


class TestSemiringAdjustments:
    @pytest.fixture
    def db(self):
        db = KDatabase(Schema.from_dict({"E": ["u", "v"]}))
        db.insert("E", (1, 1), "e11")
        db.insert("E", (2, 2), "e22")
        return db

    def test_exponent_dropping_allows_reuse(self, db):
        """In Why(X) a witness {e11} can come from a 2-atom self-join; with
        tuple reuse enabled, 2-atom queries appear."""
        example = KExample(
            [
                KExampleRow((1,), ["e11"]),
                KExampleRow((2,), ["e22"]),
            ],
            db.registry,
        )
        strict = consistent_queries(
            example, ConsistencyConfig(semiring=SemiringName.NX)
        )
        relaxed = consistent_queries(
            example,
            ConsistencyConfig(semiring=SemiringName.WHY, max_tuple_reuse=2),
        )
        assert all(len(q.body) == 1 for q in strict)
        assert any(len(q.body) == 2 for q in relaxed)
        assert strict <= relaxed

    def test_bx_behaves_like_nx(self, paper_example):
        nx_queries = consistent_queries(
            paper_example, ConsistencyConfig(semiring=SemiringName.NX)
        )
        bx_queries = consistent_queries(
            paper_example, ConsistencyConfig(semiring=SemiringName.BX)
        )
        assert nx_queries == bx_queries

    def test_exponent_semiring_surjective_alignment(self, db):
        """Why(X) alignment may map two slots onto one tuple of a later row."""
        example = KExample(
            [
                KExampleRow((1,), ["e11", "e11"]),  # exponent 2 in row 1
                KExampleRow((2,), ["e22"]),
            ],
            db.registry,
        )
        strict = consistent_queries(
            example, ConsistencyConfig(semiring=SemiringName.NX)
        )
        relaxed = consistent_queries(
            example, ConsistencyConfig(semiring=SemiringName.WHY)
        )
        assert strict == frozenset()  # bijection impossible: 2 slots, 1 tuple
        assert relaxed  # surjection allowed


class TestDeduplication:
    def test_queries_deduplicated_up_to_isomorphism(self, paper_example):
        queries = consistent_queries(paper_example)
        canons = [q.canonical() for q in queries]
        assert len(canons) == len(set(canons))
