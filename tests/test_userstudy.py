"""Tests for the simulated user study."""

import pytest

from repro.abstraction.function import AbstractionFunction
from repro.core.privacy import PrivacyComputer
from repro.datasets.queries import get_query
from repro.datasets.trees import imdb_ontology_tree
from repro.provenance.builder import build_kexample
from repro.userstudy.simulator import (
    HypotheticalQuestion,
    generate_questions,
    run_user_study,
    simulate_query_inference,
)
from repro.examples_data import Q_REAL


class TestGroundTruth:
    def test_deleting_used_tuple_kills_row(self, paper_example):
        question = HypotheticalQuestion(
            description="delete h1",
            predicate=lambda t: t.annotation == "h1",
            row_index=0,
        )
        assert question.ground_truth(paper_example) is False

    def test_deleting_unrelated_tuple_spares_row(self, paper_example):
        question = HypotheticalQuestion(
            description="delete h3",
            predicate=lambda t: t.annotation == "h3",
            row_index=0,
        )
        assert question.ground_truth(paper_example) is True


class TestQueryInference:
    def test_raw_provenance_identifies(self, paper_tree, paper_db, paper_example):
        computer = PrivacyComputer(paper_tree, paper_db.registry)
        identity = AbstractionFunction.identity(
            paper_tree, paper_example
        ).apply(paper_example)
        assert simulate_query_inference(computer, identity, Q_REAL)

    def test_abstraction_blocks_identification(
        self, paper_tree, paper_db, paper_example
    ):
        computer = PrivacyComputer(paper_tree, paper_db.registry)
        abstracted = AbstractionFunction.uniform(
            paper_tree, paper_example, {"h1": "Facebook", "h2": "LinkedIn"}
        ).apply(paper_example)
        assert not simulate_query_inference(computer, abstracted, Q_REAL)


class TestQuestionGeneration:
    def test_requested_count(self, paper_example, paper_db):
        questions = generate_questions(paper_example, paper_db, n_questions=10)
        assert len(questions) == 10

    def test_mixes_hits_and_misses(self, paper_example, paper_db):
        questions = generate_questions(
            paper_example, paper_db, n_questions=10, seed=3
        )
        truths = {q.ground_truth(paper_example) for q in questions}
        assert truths == {True, False}

    def test_deterministic(self, paper_example, paper_db):
        q1 = generate_questions(paper_example, paper_db, seed=5)
        q2 = generate_questions(paper_example, paper_db, seed=5)
        assert [q.description for q in q1] == [q.description for q in q2]


class TestFullStudy:
    def test_paper_shape_on_running_example(
        self, paper_example, paper_tree, paper_db
    ):
        """Table 7's shape: A identifies, B does not; A >= B on accuracy."""
        result = run_user_study(
            paper_example, Q_REAL, paper_tree,
            threshold=2, database=paper_db, seed=0,
        )
        assert result.group_a_identified == result.group_size
        assert result.group_b_identified == 0
        assert result.group_a_accuracy >= result.group_b_accuracy
        assert result.group_a_accuracy > 0.85
        assert result.group_b_accuracy > 0.5

    def test_summary_renders(self, paper_example, paper_tree, paper_db):
        result = run_user_study(
            paper_example, Q_REAL, paper_tree,
            threshold=2, database=paper_db, seed=1,
        )
        assert "identification" in result.summary()

    def test_unreachable_threshold_raises(
        self, paper_example, paper_tree, paper_db
    ):
        with pytest.raises(ValueError):
            run_user_study(
                paper_example, Q_REAL, paper_tree,
                threshold=10**6, database=paper_db,
            )

    def test_imdb_q3_setting(self, imdb_db):
        """The paper's study setting: IMDB-Q3, ontology tree, k=2."""
        query = get_query("IMDB-Q3")
        example = build_kexample(query, imdb_db, n_rows=2)
        tree = imdb_ontology_tree(imdb_db)
        questions = generate_questions(example, imdb_db, n_questions=10, seed=7)
        result = run_user_study(
            example, query, tree, threshold=3,
            questions=questions, seed=7,
        )
        assert result.n_questions == 10
        assert result.group_b_identified == 0
        assert 0.0 <= result.group_b_accuracy <= 1.0
