"""Exit-code and output-format tests for `repro lint`."""

import json
from pathlib import Path

from repro.analysis import REPORT_SCHEMA
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


class TestExitCodes:
    def test_clean_input_exits_zero(self, capsys):
        code = main(["lint", str(FIXTURES / "rep004" / "handlers_ok.py")])
        assert code == 0
        assert "clean: 1 files, 7 rules, 0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        code = main(["lint", str(FIXTURES / "rep005" / "seeds_bad.py")])
        assert code == 1
        out = capsys.readouterr().out
        assert out.count("REP005") >= 4
        assert "4 findings in 1 files (REP005 x4)" in out

    def test_unknown_rule_id_exits_two(self, capsys):
        code = main([
            "lint", "--rules", "REP999",
            str(FIXTURES / "rep004" / "handlers_ok.py"),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown rule id" in err
        assert "REP999" in err

    def test_missing_path_exits_two(self, capsys):
        code = main(["lint", str(FIXTURES / "does_not_exist.py")])
        assert code == 2
        assert "no such file or directory" in capsys.readouterr().err

    def test_unused_suppression_fails_the_run(self, capsys):
        code = main(["lint", str(FIXTURES / "suppress" / "unused.py")])
        assert code == 1
        out = capsys.readouterr().out
        assert "REP000" in out
        assert "unused suppression" in out

    def test_used_suppression_passes(self, capsys):
        code = main(["lint", str(FIXTURES / "suppress" / "used.py")])
        assert code == 0


class TestJsonFormat:
    def test_document_schema(self, capsys):
        code = main([
            "lint", "--format", "json",
            str(FIXTURES / "rep005" / "seeds_bad.py"),
        ])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert set(document) == {
            "schema", "files_checked", "rules_run", "findings", "counts", "ok",
        }
        assert document["schema"] == REPORT_SCHEMA
        assert document["files_checked"] == 1
        assert document["rules_run"] == [
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
            "REP007",
        ]
        assert document["counts"] == {"REP005": 4}
        assert document["ok"] is False

    def test_finding_item_schema_and_ordering(self, capsys):
        main([
            "lint", "--format", "json",
            str(FIXTURES / "rep005" / "seeds_bad.py"),
        ])
        findings = json.loads(capsys.readouterr().out)["findings"]
        assert len(findings) == 4
        for item in findings:
            assert set(item) == {"rule", "path", "line", "col", "message"}
            assert item["rule"] == "REP005"
            assert item["path"].endswith("seeds_bad.py")
        assert [f["line"] for f in findings] == sorted(
            f["line"] for f in findings
        )

    def test_clean_document(self, capsys):
        code = main([
            "lint", "--format", "json",
            str(FIXTURES / "rep004" / "handlers_ok.py"),
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is True
        assert document["findings"] == []
        assert document["counts"] == {}


class TestRuleSelection:
    def test_rules_filter_restricts_the_run(self, capsys):
        code = main([
            "lint", "--rules", "REP004",
            str(FIXTURES / "rep004" / "handlers_bad.py"),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert out.count("REP004") >= 4

    def test_other_rules_do_not_run_under_a_filter(self, capsys):
        # seeds_bad.py only violates REP005; restricted to REP004 the
        # run is clean.
        code = main([
            "lint", "--rules", "REP004",
            str(FIXTURES / "rep005" / "seeds_bad.py"),
        ])
        assert code == 0

    def test_list_rules_prints_the_catalog(self, capsys):
        code = main(["lint", "--list-rules"])
        assert code == 0
        out = capsys.readouterr().out
        for rule_id in (
            "REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
            "REP007",
        ):
            assert rule_id in out
        assert "determinism" in out
        assert "payload-parity" in out
        assert "lock-discipline" in out
        assert "exception-hygiene" in out
        assert "seed-plumbing" in out
        assert "engine-discipline" in out
        assert "obs-discipline" in out
