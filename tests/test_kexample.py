"""Tests for K-examples and their construction."""

import pytest

from repro.db.database import KDatabase
from repro.db.schema import Schema
from repro.errors import EvaluationError, SchemaError
from repro.provenance.builder import build_aggregate_example, build_kexample
from repro.provenance.kexample import KExample, KExampleRow
from repro.semirings.polynomial import Monomial
from repro.semirings.semimodule import AggregateOp
from repro.examples_data import Q_REAL
from repro.query.parser import parse_cq


class TestKExampleRow:
    def test_from_monomial(self):
        row = KExampleRow((1,), Monomial({"b": 2, "a": 1}))
        assert row.occurrences == ("a", "b", "b")
        assert row.monomial() == Monomial({"a": 1, "b": 2})
        assert row.variables() == frozenset({"a", "b"})

    def test_from_iterable(self):
        row = KExampleRow((1,), ["y", "x"])
        assert row.occurrences == ("x", "y")

    def test_empty_provenance_rejected(self):
        with pytest.raises(SchemaError):
            KExampleRow((1,), [])

    def test_replace_positionally(self):
        row = KExampleRow((1,), ["a", "b"])
        replaced = row.replace(["a", "c"])
        assert replaced.occurrences == ("a", "c")
        assert replaced.output == (1,)

    def test_replace_wrong_length_rejected(self):
        with pytest.raises(SchemaError):
            KExampleRow((1,), ["a", "b"]).replace(["a"])


class TestKExample:
    def test_paper_example(self, paper_example):
        assert len(paper_example) == 2
        assert paper_example.variables() == frozenset(
            {"p1", "h1", "i1", "p2", "h2", "i2"}
        )
        assert paper_example.tuple_of("h1").values == (1, "Dance", "Facebook")

    def test_unknown_annotation_rejected(self, paper_db):
        with pytest.raises(SchemaError):
            KExample([KExampleRow((1,), ["ghost"])], paper_db.registry)

    def test_at_least_one_row(self, paper_db):
        with pytest.raises(SchemaError):
            KExample([], paper_db.registry)

    def test_prefix(self, paper_example):
        assert len(paper_example.prefix(1)) == 1
        assert paper_example.prefix(1).rows[0] == paper_example.rows[0]

    def test_connectivity_of_real_derivations(self, paper_example):
        assert paper_example.is_connected()
        assert paper_example.row_is_connected(0)

    def test_disconnected_row_detected(self, paper_db):
        # h1=(1,'Dance','Facebook') and i6=(4,'Movies','WikiLeaks') share
        # no constant, so the row's tuple graph is disconnected.
        example = KExample([KExampleRow((1,), ["h1", "i6"])], paper_db.registry)
        assert not example.is_connected()

    def test_connected_via_shared_constant(self, paper_db):
        # h1 and h2 share the constant 'Dance'.
        example = KExample([KExampleRow((1,), ["h1", "h2"])], paper_db.registry)
        assert example.is_connected()

    def test_equality_is_registry_independent(self, paper_db, paper_example):
        clone = KExample(paper_example.rows, paper_db.registry)
        assert clone == paper_example
        assert hash(clone) == hash(paper_example)


class TestBuildKExample:
    def test_builds_requested_rows(self, paper_db):
        example = build_kexample(Q_REAL, paper_db, n_rows=2)
        outputs = {row.output for row in example.rows}
        assert outputs == {(1,), (2,)}

    def test_too_many_rows_requested(self, paper_db):
        with pytest.raises(EvaluationError):
            build_kexample(Q_REAL, paper_db, n_rows=5)

    def test_distinct_outputs_flag(self, paper_db):
        query = parse_cq("Q(id) :- Person(id, n, a), Interests(id, i, s)")
        distinct = build_kexample(query, paper_db, n_rows=2)
        assert len({r.output for r in distinct.rows}) == 2
        repeated = build_kexample(
            query, paper_db, n_rows=2, distinct_outputs=False
        )
        # Person 1 has two interests: same output twice, different monomials.
        assert len({r.monomial() for r in repeated.rows}) == 2

    def test_monomials_match_derivations(self, paper_db):
        example = build_kexample(Q_REAL, paper_db, n_rows=2)
        by_output = {row.output: row.monomial() for row in example.rows}
        assert by_output[(1,)] == Monomial.of("p1", "h1", "i1")
        assert by_output[(2,)] == Monomial.of("p2", "h2", "i2")


class TestBuildAggregateExample:
    def test_max_age(self, paper_db):
        query = parse_cq(
            "Q(age) :- Person(id, name, age), Hobbies(id, 'Dance', s1),"
            " Interests(id, 'Music', s2)"
        )
        expression = build_aggregate_example(query, paper_db, AggregateOp.MAX, 0)
        assert expression.evaluate() == 31.0
        assert len(expression.terms) == 2

    def test_non_numeric_column_rejected(self, paper_db):
        query = parse_cq("Q(name) :- Person(id, name, age)")
        with pytest.raises(EvaluationError):
            build_aggregate_example(query, paper_db, AggregateOp.MAX, 0)

    def test_no_results_rejected(self, paper_db):
        query = parse_cq("Q(age) :- Person(id, name, age), Hobbies(id, 'Chess', s)")
        with pytest.raises(EvaluationError):
            build_aggregate_example(query, paper_db, AggregateOp.MAX, 0)

    def test_term_cap(self, paper_db):
        query = parse_cq("Q(age) :- Person(id, name, age)")
        expression = build_aggregate_example(
            query, paper_db, AggregateOp.COUNT, 0, n_terms=1
        )
        assert len(expression.terms) == 1
