"""Tests for abstraction functions and K-example abstraction."""

import pytest

from repro.abstraction.function import AbstractionFunction
from repro.errors import AbstractionError
from repro.provenance.builder import build_aggregate_example
from repro.semirings.semimodule import AggregateOp
from repro.examples_data import Q_REAL
from repro.query.parser import parse_cq


class TestValidation:
    def test_identity(self, paper_tree, paper_example):
        function = AbstractionFunction.identity(paper_tree, paper_example)
        assert function.num_abstracted() == 0
        assert function.apply(paper_example).rows[0] == paper_example.rows[0]

    def test_non_ancestor_rejected(self, paper_tree, paper_example):
        with pytest.raises(AbstractionError):
            AbstractionFunction.uniform(
                paper_tree, paper_example, {"h1": "LinkedIn"}
            )

    def test_non_leaf_source_rejected(self, paper_tree, paper_example):
        # p1 is not in the tree at all; abstracting it is impossible.
        with pytest.raises(AbstractionError):
            AbstractionFunction.uniform(
                paper_tree, paper_example, {"p1": "Facebook"}
            )

    def test_bad_position_rejected(self, paper_tree, paper_example):
        with pytest.raises(AbstractionError):
            AbstractionFunction(paper_tree, paper_example, {(99, 0): "Facebook"})
        with pytest.raises(AbstractionError):
            AbstractionFunction(paper_tree, paper_example, {(0, 99): "Facebook"})

    def test_identity_targets_are_dropped(self, paper_tree, paper_example):
        function = AbstractionFunction.uniform(
            paper_tree, paper_example, {"h1": "h1"}
        )
        assert function.num_abstracted() == 0


class TestApplication:
    def test_paper_a1(self, paper_tree, paper_example):
        """A1_T of Figure 4 produces Ex_abs1 of Figure 5."""
        function = AbstractionFunction.uniform(
            paper_tree, paper_example, {"h1": "Facebook", "h2": "LinkedIn"}
        )
        abstracted = function.apply(paper_example)
        assert abstracted.rows[0].occurrences == ("Facebook", "i1", "p1")
        assert abstracted.rows[1].occurrences == ("LinkedIn", "i2", "p2")
        assert abstracted.num_abstracted() == 2

    def test_paper_a3(self, paper_tree, paper_example):
        function = AbstractionFunction.uniform(
            paper_tree, paper_example, {"i1": "WikiLeaks"}
        )
        abstracted = function.apply(paper_example)
        assert "WikiLeaks" in abstracted.rows[0].occurrences
        assert abstracted.rows[1].occurrences == ("h2", "i2", "p2")

    def test_per_occurrence_assignment(self, paper_tree, paper_example):
        """Definition 3.1: different occurrences may map differently."""
        # Row 0's h1 occurrence only (occurrence order is sorted: h1, i1, p1).
        function = AbstractionFunction(
            paper_tree, paper_example, {(0, 0): "Social Network"}
        )
        abstracted = function.apply(paper_example)
        assert "Social Network" in abstracted.rows[0].occurrences
        assert abstracted.rows[1] == paper_example.rows[1]

    def test_source_tracked(self, paper_tree, paper_example):
        function = AbstractionFunction.uniform(
            paper_tree, paper_example, {"h1": "Facebook"}
        )
        abstracted = function.apply(paper_example)
        assert abstracted.source is paper_example
        assert abstracted.mapping == {(0, 0): "Facebook"}


class TestEdgesUsed:
    def test_single_step(self, paper_tree, paper_example):
        function = AbstractionFunction.uniform(
            paper_tree, paper_example, {"h1": "Facebook"}
        )
        assert function.edges_used(paper_example) == 1

    def test_two_steps(self, paper_tree, paper_example):
        function = AbstractionFunction.uniform(
            paper_tree, paper_example, {"h1": "Social Network"}
        )
        assert function.edges_used(paper_example) == 2

    def test_shared_edges_counted_once(self, paper_tree, paper_example):
        """i1 and i2 both to the root: their paths share no edges, but two
        variables through the same parent would."""
        function = AbstractionFunction.uniform(
            paper_tree, paper_example,
            {"h1": "Social Network", "h2": "Social Network"},
        )
        # h1 -> Facebook -> SN and h2 -> LinkedIn -> SN: 4 distinct edges.
        assert function.edges_used(paper_example) == 4

    def test_identity_uses_no_edges(self, paper_tree, paper_example):
        function = AbstractionFunction.identity(paper_tree, paper_example)
        assert function.edges_used(paper_example) == 0


class TestAggregateAbstraction:
    def test_paper_section_34(self, paper_db, paper_tree, paper_example):
        max_age = parse_cq(
            "Q(age) :- Person(id, name, age), Hobbies(id, 'Dance', s1),"
            " Interests(id, 'Music', s2)"
        )
        expression = build_aggregate_example(max_age, paper_db, AggregateOp.MAX, 0)
        function = AbstractionFunction.uniform(
            paper_tree, paper_example, {"h1": "Facebook", "h2": "LinkedIn"}
        )
        abstracted = function.apply_to_aggregate(paper_example, expression)
        annotations = {repr(t.annotation) for t in abstracted.terms}
        assert "Facebook*i1*p1" in annotations
        assert "LinkedIn*i2*p2" in annotations
        assert abstracted.evaluate() == expression.evaluate() == 31.0

    def test_non_uniform_assignment_rejected(self, paper_tree, paper_example):
        both_rows_h = AbstractionFunction(
            paper_tree, paper_example,
            {(0, 0): "Facebook", (1, 0): "Social Network"},
        )
        # h1 maps one way, h2 another — fine; but the same variable mapping
        # two ways across occurrences is rejected for aggregates.
        conflicting = AbstractionFunction(
            paper_tree, paper_example, {(0, 0): "Facebook"}
        )
        max_age = parse_cq(
            "Q(age) :- Person(id, n, age), Hobbies(id, h, s1)"
        )
        # Build a tiny expression reusing h1 twice with different targets.
        from repro.semirings.semimodule import (
            AggregateExpression,
            AggregateTerm,
        )
        from repro.semirings.polynomial import Monomial

        expr = AggregateExpression(
            AggregateOp.MAX, [AggregateTerm(Monomial.of("h1"), 1.0)]
        )
        # conflicting maps only one occurrence; uniform view works.
        assert conflicting.apply_to_aggregate(paper_example, expr)
        # both_rows_h maps h1 -> Facebook and h2 -> Social Network: also
        # uniform per variable, so it must succeed.
        assert both_rows_h.apply_to_aggregate(paper_example, expr)

    def test_conflicting_per_variable_targets_rejected(
        self, paper_tree, paper_db
    ):
        from repro.provenance.builder import build_kexample
        from repro.semirings.semimodule import (
            AggregateExpression,
            AggregateTerm,
        )
        from repro.semirings.polynomial import Monomial

        query = parse_cq("Q(id, id2) :- Hobbies(id, h, s), Hobbies(id2, h2, s2)")
        example = build_kexample(query, paper_db, n_rows=2)
        # Find a row where h1 occurs; map h1 differently in two positions.
        positions = [
            (r, o)
            for r, row in enumerate(example.rows)
            for o, ann in enumerate(row.occurrences)
            if ann == "h1"
        ]
        if len(positions) < 2:
            pytest.skip("example does not reuse h1 twice")
        tree = paper_tree
        function = AbstractionFunction(
            tree, example,
            {positions[0]: "Facebook", positions[1]: "Social Network"},
        )
        expr = AggregateExpression(
            AggregateOp.MAX, [AggregateTerm(Monomial.of("h1"), 1.0)]
        )
        with pytest.raises(AbstractionError):
            function.apply_to_aggregate(example, expr)
