"""Shared fixtures: the paper's running example and small generated datasets."""

from __future__ import annotations

import pytest

from repro.datasets.imdb import generate_imdb
from repro.datasets.tpch import generate_tpch
from repro.examples_data import (
    Q_FALSE_1,
    Q_FALSE_2,
    Q_GENERAL,
    Q_REAL,
    running_example_db,
    running_example_tree,
)
from repro.provenance.builder import build_kexample


@pytest.fixture(scope="session")
def paper_db():
    """The Figure 1 database (session-scoped; treat as read-only)."""
    return running_example_db()


@pytest.fixture(scope="session")
def paper_tree():
    """The Figure 3 abstraction tree."""
    return running_example_tree()


@pytest.fixture(scope="session")
def paper_example(paper_db):
    """The K-example Ex_real of Figure 2a."""
    return build_kexample(Q_REAL, paper_db, n_rows=2)


@pytest.fixture(scope="session")
def paper_queries():
    """The four queries of Table 1."""
    return {
        "real": Q_REAL,
        "false1": Q_FALSE_1,
        "false2": Q_FALSE_2,
        "general": Q_GENERAL,
    }


@pytest.fixture(scope="session")
def tpch_db():
    """A tiny deterministic TPC-H instance."""
    return generate_tpch(scale=0.02, seed=1)


@pytest.fixture(scope="session")
def imdb_db():
    """A tiny deterministic IMDB-style instance."""
    return generate_imdb(n_people=120, n_movies=80, seed=1)
