"""Unit and property tests for N[X] monomials and polynomials."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semirings.polynomial import Monomial, Polynomial

# -- strategies ---------------------------------------------------------------

variables = st.sampled_from(["a", "b", "c", "d", "e"])
monomials = st.dictionaries(
    variables, st.integers(min_value=1, max_value=3), max_size=4
).map(Monomial)
polynomials = st.lists(
    st.tuples(monomials, st.integers(min_value=1, max_value=3)),
    max_size=4,
).map(lambda pairs: Polynomial({m: c for m, c in pairs}))


# -- Monomial -----------------------------------------------------------------

class TestMonomial:
    def test_empty_is_one(self):
        assert Monomial.one() == Monomial()
        assert Monomial.one().degree() == 0
        assert repr(Monomial.one()) == "1"

    def test_of_builds_from_names(self):
        mono = Monomial.of("a", "b", "a")
        assert mono.exponent("a") == 2
        assert mono.exponent("b") == 1
        assert mono.exponent("z") == 0

    def test_from_iterable_counts_occurrences(self):
        assert Monomial(["x", "x", "y"]) == Monomial({"x": 2, "y": 1})

    def test_zero_exponent_entries_are_dropped(self):
        assert Monomial({"a": 0, "b": 1}) == Monomial({"b": 1})

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            Monomial({"a": -1})

    def test_variables_and_degree(self):
        mono = Monomial({"a": 2, "b": 1})
        assert mono.variables() == frozenset({"a", "b"})
        assert mono.degree() == 3

    def test_expand_respects_multiplicity(self):
        assert Monomial({"b": 2, "a": 1}).expand() == ("a", "b", "b")

    def test_support_drops_exponents(self):
        assert Monomial({"a": 3, "b": 2}).support() == Monomial({"a": 1, "b": 1})

    def test_multiplication_adds_exponents(self):
        assert Monomial.of("a") * Monomial.of("a", "b") == Monomial({"a": 2, "b": 1})

    def test_multiplication_with_string(self):
        assert Monomial.of("a") * "b" == Monomial.of("a", "b")

    def test_one_is_multiplicative_identity(self):
        mono = Monomial.of("a", "b")
        assert mono * Monomial.one() == mono

    def test_rename_merges_targets(self):
        mono = Monomial.of("a", "b")
        assert mono.rename({"a": "x", "b": "x"}) == Monomial({"x": 2})

    def test_rename_keeps_unmapped(self):
        assert Monomial.of("a", "b").rename({"a": "x"}) == Monomial.of("x", "b")

    def test_divides(self):
        assert Monomial.of("a").divides(Monomial.of("a", "b"))
        assert not Monomial({"a": 2}).divides(Monomial.of("a", "b"))

    def test_ordering_is_deterministic(self):
        assert sorted([Monomial.of("b"), Monomial.of("a")])[0] == Monomial.of("a")

    def test_hashable_as_dict_key(self):
        d = {Monomial.of("a"): 1}
        assert d[Monomial.of("a")] == 1

    def test_repr_shows_exponents(self):
        assert repr(Monomial({"a": 2, "b": 1})) == "a^2*b"

    @given(monomials, monomials)
    def test_multiplication_commutes(self, m1, m2):
        assert m1 * m2 == m2 * m1

    @given(monomials, monomials, monomials)
    def test_multiplication_associates(self, m1, m2, m3):
        assert (m1 * m2) * m3 == m1 * (m2 * m3)

    @given(monomials)
    def test_expand_round_trips(self, mono):
        assert Monomial(mono.expand()) == mono


# -- Polynomial ----------------------------------------------------------------

class TestPolynomial:
    def test_zero_is_empty(self):
        assert Polynomial.zero().is_zero()
        assert repr(Polynomial.zero()) == "0"

    def test_variable_constructor(self):
        poly = Polynomial.variable("a")
        assert poly.coefficient(Monomial.of("a")) == 1

    def test_from_monomials_accumulates(self):
        poly = Polynomial.from_monomials([Monomial.of("a"), Monomial.of("a")])
        assert poly.coefficient(Monomial.of("a")) == 2

    def test_addition_accumulates_coefficients(self):
        poly = Polynomial.variable("a") + Polynomial.variable("a")
        assert poly.coefficient(Monomial.of("a")) == 2

    def test_addition_with_monomial_and_string(self):
        poly = Polynomial.variable("a") + Monomial.of("b")
        assert poly.coefficient(Monomial.of("b")) == 1

    def test_multiplication_distributes(self):
        a, b, c = (Polynomial.variable(x) for x in "abc")
        assert a * (b + c) == a * b + a * c

    def test_multiplication_produces_products(self):
        poly = Polynomial.variable("a") * Polynomial.variable("b")
        assert poly.coefficient(Monomial.of("a", "b")) == 1

    def test_zero_annihilates(self):
        poly = Polynomial.variable("a")
        assert poly * Polynomial.zero() == Polynomial.zero()

    def test_one_is_identity(self):
        poly = Polynomial.variable("a") + Polynomial.variable("b")
        assert poly * Polynomial.one() == poly

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError):
            Polynomial({Monomial.of("a"): -1})

    def test_natural_order_coefficientwise(self):
        small = Polynomial.variable("a")
        large = Polynomial.variable("a") + Polynomial.variable("a")
        assert small <= large
        assert not (large <= small)

    def test_natural_order_requires_all_monomials(self):
        p = Polynomial.variable("a")
        q = Polynomial.variable("b")
        assert not (p <= q)

    def test_variables_union(self):
        poly = Polynomial.variable("a") * Polynomial.variable("b") + Polynomial.variable("c")
        assert poly.variables() == frozenset({"a", "b", "c"})

    def test_rename_merges_monomials(self):
        poly = Polynomial.variable("a") + Polynomial.variable("b")
        renamed = poly.rename({"a": "x", "b": "x"})
        assert renamed.coefficient(Monomial.of("x")) == 2

    def test_int_addition(self):
        poly = Polynomial.variable("a") + 0
        assert poly == Polynomial.variable("a")

    def test_repr_is_readable(self):
        poly = Polynomial.variable("a") + Polynomial.variable("a")
        assert repr(poly) == "2*a"

    @given(polynomials, polynomials)
    def test_addition_commutes(self, p, q):
        assert p + q == q + p

    @given(polynomials, polynomials, polynomials)
    def test_addition_associates(self, p, q, r):
        assert (p + q) + r == p + (q + r)

    @given(polynomials, polynomials)
    def test_multiplication_commutes(self, p, q):
        assert p * q == q * p

    @settings(max_examples=50)
    @given(polynomials, polynomials, polynomials)
    def test_multiplication_associates(self, p, q, r):
        assert (p * q) * r == p * (q * r)

    @settings(max_examples=50)
    @given(polynomials, polynomials, polynomials)
    def test_distributivity(self, p, q, r):
        assert p * (q + r) == p * q + p * r

    @given(polynomials)
    def test_natural_order_reflexive(self, p):
        assert p <= p

    @given(polynomials, polynomials)
    def test_natural_order_of_sum(self, p, q):
        assert p <= p + q
