"""Tests for the loss-of-information measures."""

import math

import pytest

from repro.abstraction.concretization import ConcretizationEngine
from repro.abstraction.function import AbstractionFunction
from repro.core.loi import (
    ExplicitDistribution,
    LeafWeightDistribution,
    UniformDistribution,
    loss_of_information,
)
from repro.errors import AbstractionError


def _abstract(tree, example, targets):
    return AbstractionFunction.uniform(tree, example, targets).apply(example)


class TestUniform:
    def test_identity_loses_nothing(self, paper_tree, paper_example):
        abstracted = _abstract(paper_tree, paper_example, {})
        assert loss_of_information(abstracted, paper_tree) == 0.0

    def test_paper_ln15(self, paper_tree, paper_example):
        abstracted = _abstract(
            paper_tree, paper_example, {"h1": "Facebook", "h2": "LinkedIn"}
        )
        assert math.isclose(
            loss_of_information(abstracted, paper_tree), math.log(15)
        )

    def test_paper_ln20(self, paper_tree, paper_example):
        abstracted = _abstract(
            paper_tree, paper_example, {"i1": "WikiLeaks", "i2": "Facebook"}
        )
        assert math.isclose(
            loss_of_information(abstracted, paper_tree), math.log(20)
        )

    def test_monotone_in_abstraction_level(self, paper_tree, paper_example):
        low = _abstract(paper_tree, paper_example, {"h1": "Facebook"})
        high = _abstract(paper_tree, paper_example, {"h1": "Social Network"})
        top = _abstract(paper_tree, paper_example, {"h1": "*"})
        assert (
            loss_of_information(low, paper_tree)
            < loss_of_information(high, paper_tree)
            < loss_of_information(top, paper_tree)
        )

    def test_default_distribution_is_uniform(self, paper_tree, paper_example):
        abstracted = _abstract(paper_tree, paper_example, {"h1": "Facebook"})
        assert loss_of_information(abstracted, paper_tree) == loss_of_information(
            abstracted, paper_tree, UniformDistribution()
        )


class TestLeafWeights:
    def test_equal_weights_reduce_to_uniform(self, paper_tree, paper_example):
        abstracted = _abstract(paper_tree, paper_example, {"h1": "Facebook"})
        dist = LeafWeightDistribution({leaf: 1.0 for leaf in paper_tree.leaves()})
        assert math.isclose(
            loss_of_information(abstracted, paper_tree, dist),
            loss_of_information(abstracted, paper_tree),
        )

    def test_skewed_weights_lower_entropy(self, paper_tree, paper_example):
        abstracted = _abstract(paper_tree, paper_example, {"h1": "Facebook"})
        # Nearly all mass on one leaf under Facebook: low uncertainty.
        weights = {leaf: 1.0 for leaf in paper_tree.leaves()}
        weights["h1"] = 1000.0
        dist = LeafWeightDistribution(weights)
        assert loss_of_information(abstracted, paper_tree, dist) < (
            loss_of_information(abstracted, paper_tree)
        )

    def test_missing_weights_default_to_one(self, paper_tree, paper_example):
        abstracted = _abstract(paper_tree, paper_example, {"h1": "Facebook"})
        dist = LeafWeightDistribution({})
        assert math.isclose(
            loss_of_information(abstracted, paper_tree, dist),
            loss_of_information(abstracted, paper_tree),
        )

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(AbstractionError):
            LeafWeightDistribution({"x": 0.0})


class TestExplicit:
    def test_paper_example_37(self, paper_tree, paper_db, paper_example):
        """Example 3.7: probabilities .1/.2/.3/.4 give entropy ~ 1.279."""
        abstracted = _abstract(paper_tree, paper_example, {"i1": "WikiLeaks"})
        dist = ExplicitDistribution([0.1, 0.2, 0.3, 0.4])
        engine = ConcretizationEngine(paper_tree, paper_db.registry)
        loi = dist.loi(abstracted, paper_tree, engine)
        assert math.isclose(loi, 1.27985, abs_tol=1e-4)

    def test_uniform_probabilities_match_ln(self, paper_tree, paper_db, paper_example):
        abstracted = _abstract(paper_tree, paper_example, {"i1": "WikiLeaks"})
        dist = ExplicitDistribution([0.25] * 4)
        engine = ConcretizationEngine(paper_tree, paper_db.registry)
        assert math.isclose(dist.loi(abstracted, paper_tree, engine), math.log(4))

    def test_size_mismatch_rejected(self, paper_tree, paper_db, paper_example):
        abstracted = _abstract(paper_tree, paper_example, {"i1": "WikiLeaks"})
        engine = ConcretizationEngine(paper_tree, paper_db.registry)
        with pytest.raises(AbstractionError):
            ExplicitDistribution([0.5, 0.5]).loi(abstracted, paper_tree, engine)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(AbstractionError):
            ExplicitDistribution([0.5, 0.4])

    def test_negative_probability_rejected(self):
        with pytest.raises(AbstractionError):
            ExplicitDistribution([1.5, -0.5])


class TestEngineForwarding:
    """``loss_of_information`` must forward the engine so the explicit
    distribution's outcome-count validation actually runs."""

    def test_engine_validates_outcome_count(
        self, paper_tree, paper_db, paper_example
    ):
        abstracted = _abstract(paper_tree, paper_example, {"i1": "WikiLeaks"})
        engine = ConcretizationEngine(paper_tree, paper_db.registry)
        with pytest.raises(AbstractionError):
            loss_of_information(
                abstracted, paper_tree,
                ExplicitDistribution([0.5, 0.5]), engine=engine,
            )

    def test_engine_passes_matching_count(
        self, paper_tree, paper_db, paper_example
    ):
        abstracted = _abstract(paper_tree, paper_example, {"i1": "WikiLeaks"})
        engine = ConcretizationEngine(paper_tree, paper_db.registry)
        dist = ExplicitDistribution([0.1, 0.2, 0.3, 0.4])
        assert math.isclose(
            loss_of_information(abstracted, paper_tree, dist, engine=engine),
            1.27985, abs_tol=1e-4,
        )

    def test_without_engine_skip_is_explicit(
        self, paper_tree, paper_example
    ):
        """No engine -> the count check is documented as skipped; the
        entropy is still computed from the probabilities alone."""
        abstracted = _abstract(paper_tree, paper_example, {"i1": "WikiLeaks"})
        dist = ExplicitDistribution([0.5, 0.5])  # wrong count, unvalidated
        assert math.isclose(
            loss_of_information(abstracted, paper_tree, dist), math.log(2)
        )

    def test_closed_forms_ignore_engine(
        self, paper_tree, paper_db, paper_example
    ):
        abstracted = _abstract(paper_tree, paper_example, {"h1": "Facebook"})
        engine = ConcretizationEngine(paper_tree, paper_db.registry)
        assert loss_of_information(
            abstracted, paper_tree, UniformDistribution(), engine=engine
        ) == loss_of_information(abstracted, paper_tree)
        weights = LeafWeightDistribution({})
        assert loss_of_information(
            abstracted, paper_tree, weights, engine=engine
        ) == loss_of_information(abstracted, paper_tree, weights)

    def test_custom_distribution_without_engine_param(
        self, paper_tree, paper_example
    ):
        """Distributions with the legacy two-argument ``loi`` keep working
        as long as no engine is supplied."""

        class Legacy:
            def loi(self, abstracted, tree):
                return 42.0

        abstracted = _abstract(paper_tree, paper_example, {})
        assert loss_of_information(abstracted, paper_tree, Legacy()) == 42.0
