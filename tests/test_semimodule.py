"""Tests for aggregate provenance (semimodule expressions)."""

import pytest

from repro.semirings.polynomial import Monomial
from repro.semirings.semimodule import AggregateExpression, AggregateOp, AggregateTerm


def _expr(op, *pairs):
    return AggregateExpression(
        op, [AggregateTerm(Monomial.of(*vars_), value) for vars_, value in pairs]
    )


class TestAggregateOp:
    def test_max(self):
        assert AggregateOp.MAX.combine([1.0, 3.0, 2.0]) == 3.0

    def test_min(self):
        assert AggregateOp.MIN.combine([1.0, 3.0, 2.0]) == 1.0

    def test_sum(self):
        assert AggregateOp.SUM.combine([1.0, 3.0, 2.0]) == 6.0

    def test_count(self):
        assert AggregateOp.COUNT.combine([5.0, 5.0]) == 2.0


class TestAggregateExpression:
    def test_paper_example(self):
        """The MAX-age expression of Section 3.4."""
        expr = _expr(AggregateOp.MAX, (("p1", "h1", "i1"), 27), (("p2", "h2", "i2"), 31))
        assert expr.evaluate() == 31.0
        assert expr.variables() == frozenset({"p1", "h1", "i1", "p2", "h2", "i2"})

    def test_rename_affects_annotations_only(self):
        expr = _expr(AggregateOp.MAX, (("p1", "h1"), 27))
        renamed = expr.rename({"h1": "Facebook"})
        (term,) = renamed.terms
        assert term.annotation == Monomial.of("p1", "Facebook")
        assert term.value == 27

    def test_terms_are_canonically_ordered(self):
        e1 = _expr(AggregateOp.SUM, (("a",), 1), (("b",), 2))
        e2 = _expr(AggregateOp.SUM, (("b",), 2), (("a",), 1))
        assert e1 == e2
        assert hash(e1) == hash(e2)

    def test_addition_concatenates_terms(self):
        e1 = _expr(AggregateOp.MAX, (("a",), 1))
        e2 = _expr(AggregateOp.MAX, (("b",), 2))
        assert (e1 + e2).evaluate() == 2.0

    def test_addition_of_mismatched_ops_rejected(self):
        e1 = _expr(AggregateOp.MAX, (("a",), 1))
        e2 = _expr(AggregateOp.MIN, (("b",), 2))
        with pytest.raises(ValueError):
            e1 + e2

    def test_empty_expression_cannot_evaluate(self):
        with pytest.raises(ValueError):
            AggregateExpression(AggregateOp.SUM).evaluate()

    def test_repr_shows_tensors(self):
        expr = _expr(AggregateOp.MAX, (("a",), 1.0))
        assert "(x)" in repr(expr)
