"""Tests for the hypothetical-reasoning (what-if deletion) API."""

import pytest

from repro.abstraction.function import AbstractionFunction
from repro.provenance.builder import build_aggregate_example
from repro.provenance.hypothetical import HypotheticalReasoner, Verdict
from repro.semirings.semimodule import AggregateOp
from repro.query.parser import parse_cq


def _delete_annotations(*annotations):
    targets = set(annotations)
    return lambda tup: tup.annotation in targets


class TestConcreteRows:
    def test_survives(self, paper_db, paper_example):
        reasoner = HypotheticalReasoner(paper_db.registry)
        verdict = reasoner.row_survives(
            paper_example, 0, _delete_annotations("h3")
        )
        assert verdict is Verdict.SURVIVES

    def test_deleted(self, paper_db, paper_example):
        reasoner = HypotheticalReasoner(paper_db.registry)
        verdict = reasoner.row_survives(
            paper_example, 0, _delete_annotations("h1")
        )
        assert verdict is Verdict.DELETED

    def test_verdict_is_not_boolean(self):
        with pytest.raises(TypeError):
            bool(Verdict.SURVIVES)


class TestAbstractedRows:
    @pytest.fixture
    def abstracted(self, paper_tree, paper_example):
        function = AbstractionFunction.uniform(
            paper_tree, paper_example, {"h1": "Facebook", "h2": "LinkedIn"}
        )
        return function.apply(paper_example)

    def test_unknown_when_some_leaves_deleted(
        self, paper_db, paper_tree, abstracted
    ):
        reasoner = HypotheticalReasoner(paper_db.registry, paper_tree)
        verdict = reasoner.abstracted_row_survives(
            abstracted, 0, _delete_annotations("h1")
        )
        assert verdict is Verdict.UNKNOWN  # 'Facebook' might be h1 or not

    def test_deleted_when_all_leaves_deleted(
        self, paper_db, paper_tree, abstracted
    ):
        facebook_leaves = set(paper_tree.leaves_under("Facebook"))
        reasoner = HypotheticalReasoner(paper_db.registry, paper_tree)
        verdict = reasoner.abstracted_row_survives(
            abstracted, 0, _delete_annotations(*facebook_leaves)
        )
        assert verdict is Verdict.DELETED

    def test_survives_when_no_leaf_deleted(
        self, paper_db, paper_tree, abstracted
    ):
        reasoner = HypotheticalReasoner(paper_db.registry, paper_tree)
        verdict = reasoner.abstracted_row_survives(
            abstracted, 0, _delete_annotations("h6")
        )
        assert verdict is Verdict.SURVIVES

    def test_concrete_occurrence_in_abstracted_row(
        self, paper_db, paper_tree, abstracted
    ):
        reasoner = HypotheticalReasoner(paper_db.registry, paper_tree)
        verdict = reasoner.abstracted_row_survives(
            abstracted, 0, _delete_annotations("i1")
        )
        assert verdict is Verdict.DELETED  # i1 stayed concrete in row 0

    def test_tree_required(self, paper_db, abstracted):
        reasoner = HypotheticalReasoner(paper_db.registry)
        with pytest.raises(ValueError):
            reasoner.abstracted_row_survives(
                abstracted, 0, _delete_annotations("h1")
            )


class TestAggregates:
    @pytest.fixture
    def max_age(self, paper_db):
        query = parse_cq(
            "Q(age) :- Person(id, name, age), Hobbies(id, 'Dance', s1),"
            " Interests(id, 'Music', s2)"
        )
        return build_aggregate_example(query, paper_db, AggregateOp.MAX, 0)

    def test_deletion_changes_max(self, paper_db, max_age):
        reasoner = HypotheticalReasoner(paper_db.registry)
        assert reasoner.aggregate_after_deletion(
            max_age, _delete_annotations("h2")
        ) == 27.0  # Brenda's derivation dies; James's 27 remains

    def test_no_survivors(self, paper_db, max_age):
        reasoner = HypotheticalReasoner(paper_db.registry)
        assert reasoner.aggregate_after_deletion(
            max_age, _delete_annotations("h1", "h2")
        ) is None

    def test_unrelated_deletion_keeps_value(self, paper_db, max_age):
        reasoner = HypotheticalReasoner(paper_db.registry)
        assert reasoner.aggregate_after_deletion(
            max_age, _delete_annotations("h6")
        ) == 31.0

    def test_abstracted_bounds(
        self, paper_db, paper_tree, paper_example, max_age
    ):
        function = AbstractionFunction.uniform(
            paper_tree, paper_example, {"h2": "LinkedIn"}
        )
        abstracted_expr = function.apply_to_aggregate(paper_example, max_age)
        reasoner = HypotheticalReasoner(paper_db.registry, paper_tree)
        bounds = reasoner.abstracted_aggregate_bounds(
            abstracted_expr, _delete_annotations("h2")
        )
        # Brenda's term may or may not survive: MAX is 27 or 31.
        assert bounds == (27.0, 31.0)

    def test_abstracted_bounds_all_dead(
        self, paper_db, paper_tree, paper_example, max_age
    ):
        function = AbstractionFunction.identity(paper_tree, paper_example)
        expr = function.apply_to_aggregate(paper_example, max_age)
        reasoner = HypotheticalReasoner(paper_db.registry, paper_tree)
        assert reasoner.abstracted_aggregate_bounds(
            expr, _delete_annotations("h1", "h2")
        ) is None
