"""Smoke tests for the experiment harness on miniature settings."""

import math

import pytest

from repro.experiments.figures import (
    ABLATION_LABELS,
    run_distribution_sensitivity,
    run_dual_problem,
    run_fig09_threshold_runtime,
    run_fig10_threshold_size,
    run_fig11_threshold_loi,
    run_fig16_joins_runtime,
    run_fig17_rows_runtime,
    run_fig18_compression_loi,
    run_fig19_component_ablation,
    run_table3_running_example,
    run_table6_query_stats,
)
from repro.experiments.report import format_series
from repro.experiments.runner import prepare_context, timed_optimal
from repro.experiments.settings import DEFAULT_SETTINGS, ExperimentSettings

TINY = ExperimentSettings(
    privacy_threshold=2,
    thresholds=(2, 3),
    tree_sizes=(30, 60),
    tree_heights=(3, 4),
    row_counts=(2,),
    tree_leaves=40,
    tpch_scale=0.015,
    imdb_people=60,
    imdb_movies=40,
    max_candidates=400,
    max_seconds=5.0,
)

QUERIES = ("TPCH-Q3", "IMDB-Q1")


class TestRunner:
    def test_prepare_context(self):
        context = prepare_context("TPCH-Q3", TINY)
        assert context.query_name == "TPCH-Q3"
        assert len(context.example) == 2
        assert set(context.example.variables()) <= set(
            context.database.annotations()
        )

    def test_context_tree_covers_variables(self):
        context = prepare_context("IMDB-Q1", TINY)
        leaves = set(context.tree.leaves())
        assert context.example.variables() <= leaves

    def test_timed_optimal(self):
        context = prepare_context("TPCH-Q3", TINY)
        result, seconds = timed_optimal(context, 2)
        assert seconds > 0
        assert result.stats.candidates_scanned > 0

    def test_databases_cached_across_contexts(self):
        c1 = prepare_context("TPCH-Q3", TINY)
        c2 = prepare_context("TPCH-Q4", TINY)
        assert c1.database is c2.database


class TestThresholdSweep:
    def test_fig09_series_shape(self):
        series = run_fig09_threshold_runtime(TINY, queries=QUERIES)
        assert set(series) == set(QUERIES)
        for points in series.values():
            assert [k for k, _ in points] == list(TINY.thresholds)
            assert all(seconds > 0 for _, seconds in points)

    def test_fig10_and_fig11_share_sweep(self):
        sizes = run_fig10_threshold_size(TINY, queries=QUERIES)
        lois = run_fig11_threshold_loi(TINY, queries=QUERIES)
        assert set(sizes) == set(lois) == set(QUERIES)

    def test_fig11_loi_nondecreasing_in_k(self):
        lois = run_fig11_threshold_loi(TINY, queries=QUERIES)
        for name, points in lois.items():
            values = [v for _, v in points if not math.isnan(v)]
            assert values == sorted(values), name


class TestOtherSweeps:
    def test_fig16_join_sweep(self):
        series = run_fig16_joins_runtime(TINY, queries=("TPCH-Q7",))
        points = series["TPCH-Q7"]
        assert len(points) >= 2
        assert all(seconds > 0 for _, seconds in points)

    def test_fig17_rows(self):
        series = run_fig17_rows_runtime(TINY, queries=("TPCH-Q3",))
        assert [rows for rows, _ in series["TPCH-Q3"]] == [2]

    def test_fig18_compression_pays_more_loi(self):
        series = run_fig18_compression_loi(TINY, queries=("TPCH-Q3",))
        ours = dict(series["TPCH-Q3 (ours)"])
        theirs = dict(series["TPCH-Q3 (compression [24])"])
        for k in TINY.thresholds:
            if not (math.isnan(ours[k]) or math.isnan(theirs[k])):
                assert theirs[k] >= ours[k] - 1e-9

    def test_fig19_ablation_runs(self):
        series = run_fig19_component_ablation(
            TINY, queries=("TPCH-Q3",), threshold=2, n_leaves=10, height=3,
            budget_seconds=8.0
        )
        points = series["TPCH-Q3"]
        assert len(points) == len(ABLATION_LABELS)
        assert points[0] == (0, 100.0)

    def test_distribution_sensitivity(self):
        series = run_distribution_sensitivity(TINY, queries=("TPCH-Q3",))
        assert len(series["TPCH-Q3"]) == 2

    def test_dual_problem(self):
        series = run_dual_problem(TINY, queries=("TPCH-Q3",))
        points = dict(series["TPCH-Q3"])
        assert points[2] >= 0  # dual privacy


class TestTables:
    def test_table3(self):
        counts = run_table3_running_example()
        assert counts["cim"] == 2
        assert counts["connected"] >= counts["cim"]
        assert counts["consistent"] >= counts["connected"]

    def test_table6_matches_paper(self):
        stats = run_table6_query_stats()
        assert stats["TPCH-Q21"] == (6, 5)
        assert stats["IMDB-Q4"] == (7, 6)


class TestReport:
    def test_format_series(self):
        text = format_series(
            "demo", {"q": [(1, 0.5), (2, float("nan"))]},
            x_label="k", y_label="s",
        )
        assert "demo" in text
        assert "q" in text
        assert "-" in text  # the NaN cell
