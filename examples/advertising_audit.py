"""The introduction's advertising scenario: explanation vs. trade secret.

An ad company must explain to Brenda why she was shown an ad (GDPR-style),
but its targeting query is a trade secret.  This example plays both roles:

1. the *auditor*, who receives provenance-based explanations, and
2. the *attacker*, who runs the CIM reverse-engineering attack on them,

first on raw provenance (attack succeeds) and then on provenance published
through an optimal abstraction (attack yields multiple plausible queries).

Run:  python examples/advertising_audit.py
"""

from repro import (
    AbstractionFunction,
    PrivacyComputer,
    build_kexample,
    consistent_queries,
    is_connected,
    is_equivalent,
)
from repro.core.optimizer import find_optimal_abstraction
from repro.examples_data import (
    Q_FALSE_1,
    Q_REAL,
    running_example_db,
    running_example_tree,
)


def attack(computer: PrivacyComputer, abstracted, label: str) -> None:
    """Run the reverse-engineering attack and report what it learns."""
    cims = computer.cim_queries(abstracted)
    print(f"  [{label}] attack finds {len(cims)} candidate quer"
          f"{'y' if len(cims) == 1 else 'ies'}:")
    for query in sorted(cims, key=repr):
        tags = []
        if is_equivalent(query, Q_REAL):
            tags.append("the real query!")
        if is_equivalent(query, Q_FALSE_1):
            tags.append("a decoy")
        suffix = f"   <- {', '.join(tags)}" if tags else ""
        print(f"      {query}{suffix}")
    if len(cims) == 1:
        print("      => the trade secret leaked.")
    else:
        print("      => the attacker cannot single out the real query.")


def main() -> None:
    db = running_example_db()
    tree = running_example_tree()
    example = build_kexample(Q_REAL, db, n_rows=2)
    computer = PrivacyComputer(tree, db.registry)

    print("== Explanations sent to James and Brenda (raw provenance) ==")
    for row in example.rows:
        print(f"  ad shown to person {row.output[0]} because of {row.monomial()}")
    print()

    identity = AbstractionFunction.identity(tree, example).apply(example)
    attack(computer, identity, "raw provenance")
    print()

    print("== Table 3: the consistent-query landscape of the abstraction ==")
    function = AbstractionFunction.uniform(
        tree, example, {"h1": "Facebook", "h2": "LinkedIn"}
    )
    abstracted = function.apply(example)
    consistent = set()
    for concretization in computer.engine.concretizations(abstracted):
        consistent.update(consistent_queries(concretization))
    connected = {q for q in consistent if is_connected(q)}
    cim = computer.cim_queries(abstracted)
    print(f"  consistent queries generated : {len(consistent)}")
    print(f"  of these connected           : {len(connected)}")
    print(f"  of these CIM (the privacy)   : {len(cim)}")
    print()

    print("== Publishing through the optimal abstraction (k=2) ==")
    result = find_optimal_abstraction(example, tree, threshold=2)
    assert result.found and result.abstracted is not None
    for row in result.abstracted.rows:
        print(f"  ad shown to person {row.output[0]} because of {row.monomial()}")
    print(f"  (loss of information: {result.loi:.3f})")
    print()
    attack(computer, result.abstracted, "abstracted provenance")


if __name__ == "__main__":
    main()
