"""IMDB explanations and the simulated user study.

Reproduces the paper's user-study setting (Section 5.2): the Bacon-number
query IMDB-Q3 over an IMDB-style database with the hand-built ontology
abstraction tree.  Group A sees raw provenance, Group B the optimal
abstraction; the simulation measures query identification and hypothetical
deletion-question accuracy (Table 7 / Figure 20).

Run:  python examples/imdb_explanations.py
"""

from repro import build_kexample
from repro.datasets.imdb import generate_imdb
from repro.datasets.queries import get_query
from repro.datasets.trees import imdb_ontology_tree
from repro.userstudy import generate_questions, run_user_study


def main() -> None:
    db = generate_imdb(seed=1)
    tree = imdb_ontology_tree(db)
    query = get_query("IMDB-Q3")
    example = build_kexample(query, db, n_rows=2, max_overlap=0.5)

    print("== The (secret) query ==")
    print(f"  {query}\n")
    print("== Explanations as published (raw provenance) ==")
    for row in example.rows:
        print(f"  {row}")
    print()

    questions = generate_questions(example, db, n_questions=10, seed=7)
    print("== The ten hypothetical questions ==")
    for index, question in enumerate(questions):
        print(f"  Q{index + 1}: {question.description}")
    print()

    result = run_user_study(
        example, query, tree,
        threshold=3, questions=questions, seed=7,
    )
    print("== Study outcome (paper's Table 7: A 6/6 vs B 0/6; 96% vs 85%) ==")
    print(f"  {result.summary()}\n")
    print("== Per-question breakdown (Figure 20) ==")
    print(f"  {'question':>9} {'group A':>8} {'group B':>8}")
    for index in range(result.n_questions):
        print(f"  {'Q' + str(index + 1):>9} "
              f"{result.group_a_correct[index]:>8} "
              f"{result.group_b_correct[index]:>8}")


if __name__ == "__main__":
    main()
