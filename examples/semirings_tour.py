"""A tour of the provenance semirings and aggregate provenance.

Walks the Green hierarchy (Table 4 of the paper): the same query result is
shown in N[X], B[X], Trio(X), Why(X), PosBool(X), and Lin(X), and the
effect of the coarsening on the consistent-query attack is demonstrated.
Finishes with the aggregate (semimodule) provenance of Section 3.4 and an
abstraction applied to its annotation side.

Run:  python examples/semirings_tour.py
"""

from repro import (
    AggregateOp,
    ConsistencyConfig,
    SemiringName,
    build_aggregate_example,
    build_kexample,
    coarsen,
    consistent_queries,
    evaluate,
    parse_cq,
)
from repro.abstraction.function import AbstractionFunction
from repro.examples_data import Q_REAL, running_example_db, running_example_tree


def main() -> None:
    db = running_example_db()

    print("== One query, six provenance semirings ==")
    # A query with a genuine multi-derivation output so that coefficients,
    # exponents, and absorption all show up.
    query = parse_cq("Q(id) :- Person(id, n, a), Interests(id, i, s)")
    results = evaluate(query, db)
    output, polynomial = sorted(results.items())[0]
    print(f"  output {output}:")
    for semiring in SemiringName:
        value = coarsen(polynomial, semiring)
        print(f"    {semiring.value:<12} {value!r}")
    print()

    print("== Coarser provenance admits more consistent queries ==")
    example = build_kexample(Q_REAL, db, n_rows=2)
    for semiring in (SemiringName.NX, SemiringName.WHY):
        config = ConsistencyConfig(semiring=semiring, max_tuple_reuse=2)
        queries = consistent_queries(example, config)
        print(f"  {semiring.value:<8} -> {len(queries)} consistent queries")
    print()

    print("== Aggregate provenance (Section 3.4) ==")
    max_age = parse_cq(
        "Q(age) :- Person(id, name, age), Hobbies(id, 'Dance', s1),"
        " Interests(id, 'Music', s2)"
    )
    expression = build_aggregate_example(max_age, db, AggregateOp.MAX, 0)
    print(f"  MAX(age) = {expression!r}")
    print(f"  evaluates to {expression.evaluate():g}\n")

    print("== Abstracting the annotation side of the semimodule ==")
    tree = running_example_tree()
    function = AbstractionFunction.uniform(
        tree, example, {"h1": "Facebook", "h2": "LinkedIn"}
    )
    abstracted = function.apply_to_aggregate(example, expression)
    print(f"  {abstracted!r}")
    print("  (the aggregate values stay exact; only annotations blur)")


if __name__ == "__main__":
    main()
