"""The future-work extensions: Lin(X) completion and inferred trees.

Two scenarios beyond the paper's core pipeline:

1. **Partial lineage.** A data provider published only Lin(X) provenance —
   the flat *set* of contributing tuples, possibly incomplete.  We complete
   it into candidate monomials (the paper's suggested pre-step) and run the
   CIM attack on the completions.
2. **Inferred abstraction trees.** No curator built a tree; we infer one
   from attribute values (Section 4's construction sketch) and use it to
   find an optimal abstraction.

Run:  python examples/lineage_and_inferred_trees.py
"""

from repro import (
    PrivacyComputer,
    build_kexample,
    complete_lineage,
    find_optimal_abstraction,
    kexamples_from_lineage,
    render_kexample,
    render_query,
    render_tree,
    tree_by_attributes,
)
from repro.examples_data import Q_REAL, running_example_db


def lineage_scenario(db) -> None:
    print("== Scenario 1: completing partial Lin(X) provenance ==")
    published = [((1,), ["p1", "h1"]), ((2,), ["p2", "h2"])]
    print("published lineage (incomplete!):")
    for output, lineage in published:
        print(f"  {output} <- {set(lineage)}")

    completions = complete_lineage((1,), ["p1", "h1"], db)
    print(f"\ncompletions for row (1,): {len(completions)} candidates")
    for monomial in completions[:5]:
        print(f"  {monomial!r}")

    examples = kexamples_from_lineage(published, db, max_extra_tuples=1)
    print(f"\ncandidate K-examples after completion: {len(examples)}")
    if examples:
        print(render_kexample(examples[0]))


def inferred_tree_scenario(db) -> None:
    print("\n== Scenario 2: inferring the abstraction tree ==")
    tree = tree_by_attributes(
        db, {"Hobbies": ["hobby"], "Interests": ["interest"]}
    )
    example = build_kexample(Q_REAL, db, n_rows=2)
    print(render_tree(tree, highlight=example.variables(), max_children=6))

    result = find_optimal_abstraction(example, tree, threshold=2)
    assert result.found and result.abstracted is not None
    print(f"\noptimal abstraction: privacy={result.privacy} "
          f"LOI={result.loi:.3f}")
    print(render_kexample(result.abstracted))

    computer = PrivacyComputer(tree, db.registry)
    print("\nattacker's candidates:")
    for query in sorted(computer.cim_queries(result.abstracted), key=repr):
        print(f"  {render_query(query)}")


def main() -> None:
    db = running_example_db()
    lineage_scenario(db)
    inferred_tree_scenario(db)


if __name__ == "__main__":
    main()
