"""The privacy/utility trade-off on a TPC-H workload.

Generates a scaled TPC-H instance, publishes K-examples for the CQ-adapted
queries Q3 and Q10, and sweeps the privacy threshold to show how the loss
of information (and the abstraction size) grows with the privacy demand —
the trade-off at the heart of the paper.  Also demonstrates the dual
problem: the best privacy attainable under an LOI budget.

Run:  python examples/tpch_tradeoff.py
"""

from repro import build_kexample, find_dual_optimal_abstraction
from repro.core.optimizer import OptimizerConfig, find_optimal_abstraction
from repro.datasets.queries import get_query
from repro.datasets.tpch import generate_tpch
from repro.abstraction.builders import tree_over_annotations


def main() -> None:
    db = generate_tpch(scale=0.02, seed=1)
    print(f"generated {db!r}\n")
    config = OptimizerConfig(max_candidates=10_000, max_seconds=20.0)

    for name in ("TPCH-Q3", "TPCH-Q10"):
        query = get_query(name)
        example = build_kexample(query, db, n_rows=2)
        tree = tree_over_annotations(
            [t.annotation for t in db.tuples()],
            n_leaves=150, height=5, seed=0,
            must_include=sorted(example.variables()),
        )
        print(f"== {name}: {query}")
        print(f"   K-example variables: {sorted(example.variables())}")
        print(f"   {'k':>3} {'privacy':>8} {'LOI':>8} {'edges':>6} {'scanned':>8}")
        last = None
        for k in (2, 4, 6):
            result = find_optimal_abstraction(example, tree, k, config=config)
            if result.found:
                print(f"   {k:>3} {result.privacy:>8} {result.loi:>8.3f} "
                      f"{result.edges_used:>6} "
                      f"{result.stats.candidates_scanned:>8}")
                last = result
            else:
                print(f"   {k:>3} {'(none found within budget)':>26}")
        if last is not None:
            print(f"   dual problem: best privacy with LOI <= {last.loi:.3f}:")
            dual = find_dual_optimal_abstraction(
                example, tree, max_loi=last.loi, config=config
            )
            print(f"     privacy={dual.privacy} at LOI={dual.loi:.3f}")
        print()


if __name__ == "__main__":
    main()
