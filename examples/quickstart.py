"""Quickstart: the paper's running example, end to end.

Builds the Interests/Hobbies/Persons database of Figure 1, runs the
confidential query Q_real, publishes a K-example, and finds the optimal
abstraction for a privacy threshold of 2 — reproducing Examples 1.1-3.15
of the paper.

Run:  python examples/quickstart.py
"""

import math

from repro import (
    AbstractionFunction,
    PrivacyComputer,
    build_kexample,
    evaluate,
    find_optimal_abstraction,
    loss_of_information,
)
from repro.examples_data import Q_REAL, running_example_db, running_example_tree


def main() -> None:
    db = running_example_db()
    tree = running_example_tree()

    print("== The confidential query (Table 1) ==")
    print(Q_REAL, "\n")

    print("== Query results with provenance (Figure 2a) ==")
    for output, provenance in evaluate(Q_REAL, db).items():
        print(f"  {output} <- {provenance}")
    print()

    example = build_kexample(Q_REAL, db, n_rows=2)

    print("== Privacy of the raw K-example ==")
    computer = PrivacyComputer(tree, db.registry)
    identity = AbstractionFunction.identity(tree, example).apply(example)
    print(f"  CIM queries: {computer.privacy(identity)}")
    print("  (1 means anyone can reverse-engineer the query!)\n")

    print("== Finding the optimal abstraction for threshold k=2 ==")
    result = find_optimal_abstraction(example, tree, threshold=2)
    assert result.found and result.abstracted is not None
    print(f"  privacy            : {result.privacy}")
    print(f"  loss of information: {result.loi:.4f}  (paper: ln 15 = {math.log(15):.4f})")
    print(f"  tree edges used    : {result.edges_used}")
    print("  published K-example:")
    for row in result.abstracted.rows:
        print(f"    {row}")
    print()

    print("== The CIM queries an attacker is left with ==")
    for query in sorted(computer.cim_queries(result.abstracted), key=repr):
        print(f"  {query}")
    print("\nThe attacker cannot tell Q_real from Q_false_1 — by design.")

    print("\n== Comparing with a hand-picked worse abstraction (A2_T) ==")
    a2 = AbstractionFunction.uniform(
        tree, example, {"i1": "WikiLeaks", "i2": "Facebook"}
    )
    abstracted2 = a2.apply(example)
    loi2 = loss_of_information(abstracted2, tree)
    print(f"  A2_T privacy={computer.privacy(abstracted2)} "
          f"LOI={loi2:.4f} (paper: ln 20 = {math.log(20):.4f})")
    print(f"  The optimizer's choice is better: {result.loi:.4f} < {loi2:.4f}")


if __name__ == "__main__":
    main()
