"""Warm-hit latency of the persistent result cache vs recomputing.

PR 4's tentpole: the optimizer is pure, so a content-addressed store
(:mod:`repro.store`) can answer a repeated job without running Algorithm
2 at all.  This guard measures exactly that economy, stacked *on top of*
the in-process amortizations of PRs 1-3: the recompute baseline runs
``run_job`` with the context and privacy-session caches already warm, so
the measured ratio is pure search-vs-lookup, not data-generation noise.

Two assertions:

* **latency** — answering the workload stream from a warm store must be
  >= 5x faster (aggregate) than recomputing each job, and
* **fidelity** — every cached payload must equal the freshly computed
  one bit for bit, ``cache_hit`` marker aside (the cache may only change
  speed, never results).
"""

from _common import BENCH_SETTINGS, perf_counter
from repro.batch import job_from_spec, run_job
from repro.examples_data import running_example_db, running_example_tree
from repro.io.json_io import database_to_json, tree_to_json

QUERY = (
    "Q(id) :- Person(id, name, age), Hobbies(id, 'Dance', s1),"
    " Interests(id, 'Music', s2)"
)

#: The guard ratio: aggregate recompute seconds / warm-lookup seconds.
MIN_SPEEDUP = 5.0

TIMING_ROUNDS = 3


def _jobs():
    inline = {
        "database": database_to_json(running_example_db()),
        "tree": tree_to_json(running_example_tree()),
        "query": QUERY,
    }
    specs = [
        {**inline, "threshold": 2},
        {**inline, "threshold": 3},
        {"query_name": "TPCH-Q3", "threshold": 2,
         "max_candidates": 300, "max_seconds": 10.0},
    ]
    return [job_from_spec(spec) for spec in specs]


def _run_all(jobs, store_path=None):
    start = perf_counter()
    results = [run_job(job, BENCH_SETTINGS, store_path) for job in jobs]
    return results, perf_counter() - start


def _payload(result):
    payload = result.to_payload()
    payload.pop("cache_hit")
    return payload


def test_result_cache_warm_hit_latency(benchmark, tmp_path):
    store_path = str(tmp_path / "results.db")
    jobs = _jobs()

    # Warm the in-process context/session caches AND populate the store,
    # so both sides of the comparison start from the same warm state.
    fresh, _ = _run_all(jobs, store_path)
    assert all(r.ok for r in fresh), [r.error for r in fresh]
    assert not any(r.cache_hit for r in fresh)

    recompute_seconds = float("inf")
    for _ in range(TIMING_ROUNDS):
        recomputed, seconds = _run_all(jobs)  # no store: full search
        recompute_seconds = min(recompute_seconds, seconds)

    cached_seconds = float("inf")
    for _ in range(TIMING_ROUNDS):
        cached, seconds = _run_all(jobs, store_path)
        cached_seconds = min(cached_seconds, seconds)

    assert all(r.cache_hit for r in cached), "store should answer every job"
    for fresh_result, cached_result in zip(fresh, cached):
        assert _payload(cached_result) == _payload(fresh_result), (
            "cached payload differs from the freshly computed one"
        )

    speedup = recompute_seconds / cached_seconds
    print(f"\n{len(jobs)} jobs: recompute {recompute_seconds:.4f}s vs "
          f"warm store {cached_seconds:.4f}s -> {speedup:.1f}x")
    benchmark.extra_info["recompute_seconds"] = recompute_seconds
    benchmark.extra_info["cached_seconds"] = cached_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert speedup >= MIN_SPEEDUP, (
        f"warm result-cache hits only {speedup:.2f}x faster than "
        f"recomputing (expected >= {MIN_SPEEDUP}x)"
    )
