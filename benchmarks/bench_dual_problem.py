"""Section 4.2 (the dual problem): max privacy under an LOI cap.

Paper claim: the LOI cap bounds the scanned abstraction space, so the dual
is more efficiently solvable than an uncapped scan.
"""

from _common import BENCH_SETTINGS, record_series
from repro.experiments.figures import run_dual_problem

QUERIES = ("TPCH-Q3", "IMDB-Q1")


def test_dual_problem(benchmark):
    series = benchmark.pedantic(
        run_dual_problem,
        kwargs={"settings": BENCH_SETTINGS, "queries": QUERIES},
        rounds=1, iterations=1,
    )
    record_series(
        benchmark,
        "Dual problem (x=0 primal seconds, x=1 dual seconds, x=2 dual privacy)",
        series, x_label="query \\ metric", y_label="value",
    )
    for name, points in series.items():
        metrics = dict(points)
        assert metrics[2] >= 0, f"{name}: dual must return a privacy value"
