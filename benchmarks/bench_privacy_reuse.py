"""Cross-search privacy-session reuse on a Fig 9-style threshold sweep.

PR 2's tentpole: every cache of Algorithm 1 — row-option sets, prefix
queries, connectivity verdicts, pairwise containments, minimal sets — is
threshold-independent, so a :class:`PrivacySession` warmed by one search
serves every other threshold over the same (tree, registry) context.
Two measurements per workload of the Fig 9-style sweep:

* *privacy-computation throughput* — the same sorted candidate stream
  (the prefix of Algorithm 2's scan order) evaluated by Algorithm 1 at
  every threshold of the sweep, with one shared session vs a fresh
  computer per threshold (the status quo before sessions).  The returned
  privacy values must be identical and the aggregate throughput across
  the workloads must be >= 2x.
* *end-to-end sweep equality* — ``find_optimal_abstraction`` per
  threshold with and without a shared session; found/privacy/LOI and the
  chosen abstraction's assignment must be bit-identical (session caching
  may only change speed, never results).
"""

import pytest

from _common import BENCH_SETTINGS, perf_counter
from repro.core.loi import UniformDistribution
from repro.core.optimizer import (
    IncrementalEvaluator,
    OptimizerConfig,
    _SortedFrontier,
    _occurrence_counts,
    find_optimal_abstraction,
    search_space,
)
from repro.core.privacy import PrivacyComputer, PrivacySession
from repro.experiments.runner import prepare_context, privacy_session_for

#: Fig 9-style threshold sweep (the paper sweeps k = 2..20; these points
#: keep one CI smoke run in seconds while spanning the same shape).
THRESHOLDS = (2, 3, 4, 6)

#: Per-workload prefix of the sorted candidate stream to evaluate.  The
#: TPC-H Q3 candidates carry far larger concretization sets per step, so
#: fewer of them saturate the measurement.
WORKLOADS = (("TPCH-Q3", 40), ("TPCH-Q10", 120), ("IMDB-Q1", 120))

TIMING_ROUNDS = 3

#: The guard: total cold seconds / total warm seconds across workloads.
#: Per-workload ratios are printed and recorded but not asserted — the
#: small workloads' absolute times are jitter-prone on shared CI runners.
MIN_AGGREGATE_SPEEDUP = 2.0


def _sorted_abstracted(context, limit):
    """The first ``limit`` abstracted examples in Algorithm 2's scan order."""
    example, tree = context.example, context.tree
    variables, chains = search_space(example, tree)
    frontier = _SortedFrontier(
        variables, chains, tree, _occurrence_counts(example, variables)
    )
    evaluator = IncrementalEvaluator(
        example, tree, variables, chains, UniformDistribution()
    )
    candidates = []
    while len(candidates) < limit:
        levels = frontier.pop()
        if levels is None:
            break
        candidates.append(evaluator.materialize(levels)[1])
        frontier.expand(levels)
    return candidates


def _sweep_computations(context, candidates, shared):
    """Evaluate every candidate at every threshold; one session or none."""
    tree, registry = context.tree, context.example.registry
    session = PrivacySession(tree, registry) if shared else None
    values = []
    start = perf_counter()
    for threshold in THRESHOLDS:
        computer = PrivacyComputer(tree, registry, session=session)
        for abstracted in candidates:
            values.append(computer.compute(abstracted, threshold))
    return values, perf_counter() - start


def _best_of(rounds, run):
    best_seconds, values = float("inf"), None
    for _ in range(rounds):
        new_values, seconds = run()
        best_seconds = min(best_seconds, seconds)
        values = new_values
    return values, best_seconds


def test_privacy_session_throughput(benchmark):
    total_cold = total_warm = 0.0
    total_computations = 0
    per_workload = {}
    for query_name, n_candidates in WORKLOADS:
        context = prepare_context(query_name, BENCH_SETTINGS)
        candidates = _sorted_abstracted(context, n_candidates)
        cold_values, cold_seconds = _best_of(
            TIMING_ROUNDS, lambda: _sweep_computations(context, candidates, False)
        )
        warm_values, warm_seconds = _best_of(
            TIMING_ROUNDS, lambda: _sweep_computations(context, candidates, True)
        )
        assert cold_values == warm_values, (
            f"{query_name}: session caching changed privacy values"
        )
        speedup = cold_seconds / warm_seconds
        computations = len(THRESHOLDS) * len(candidates)
        per_workload[query_name] = {
            "computations": computations,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": speedup,
        }
        total_cold += cold_seconds
        total_warm += warm_seconds
        total_computations += computations
        print(f"\n{query_name}: {computations} privacy computations over "
              f"k={THRESHOLDS}, cold {cold_seconds:.3f}s vs shared-session "
              f"{warm_seconds:.3f}s -> {speedup:.1f}x")

    aggregate = total_cold / total_warm
    print(f"aggregate: {total_computations} computations, "
          f"cold {total_cold:.2f}s vs warm {total_warm:.2f}s "
          f"-> {aggregate:.1f}x")
    benchmark.extra_info["per_workload"] = per_workload
    benchmark.extra_info["aggregate_speedup"] = aggregate
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert aggregate >= MIN_AGGREGATE_SPEEDUP, (
        f"privacy-computation throughput only {aggregate:.2f}x with "
        f"session caching on vs off (expected >= {MIN_AGGREGATE_SPEEDUP}x)"
    )


#: Budget for the end-to-end equality sweeps (full BENCH_SETTINGS budgets
#: would make the cold TPCH-Q3 sweep dominate the smoke run).
SWEEP_BUDGET = dict(max_candidates=600, max_seconds=20.0)


@pytest.mark.parametrize("query_name", [w[0] for w in WORKLOADS])
def test_threshold_sweep_results_bit_identical(benchmark, query_name):
    context = prepare_context(query_name, BENCH_SETTINGS)
    config = OptimizerConfig(**SWEEP_BUDGET)
    session = privacy_session_for(context)

    def run_shared():
        return [
            find_optimal_abstraction(
                context.example, context.tree, threshold,
                config=config, session=session,
            )
            for threshold in THRESHOLDS
        ]

    shared = benchmark.pedantic(run_shared, rounds=1, iterations=1)
    reused = 0
    for threshold, with_session in zip(THRESHOLDS, shared):
        cold = find_optimal_abstraction(
            context.example, context.tree, threshold, config=config
        )
        assert with_session.found == cold.found
        assert with_session.privacy == cold.privacy
        assert with_session.loi == cold.loi
        assert with_session.edges_used == cold.edges_used
        assert with_session.stats.candidates_scanned == (
            cold.stats.candidates_scanned
        )
        if cold.found:
            assert with_session.function.assignment == cold.function.assignment
            assert with_session.abstracted.rows == cold.abstracted.rows
        reused += with_session.stats.row_option_cache_hits
    benchmark.extra_info["query"] = query_name
    benchmark.extra_info["row_option_cache_hits"] = reused
    assert session.computers_attached == len(THRESHOLDS)
