"""Figure 11: loss of information vs privacy threshold.

Paper shape: LOI increases with k — privacy is paid for in information.
"""

import math

from _common import BENCH_QUERIES, BENCH_SETTINGS, record_series
from repro.experiments.figures import run_fig11_threshold_loi


def test_fig11_threshold_loi(benchmark):
    series = benchmark.pedantic(
        run_fig11_threshold_loi,
        kwargs={"settings": BENCH_SETTINGS, "queries": BENCH_QUERIES},
        rounds=1, iterations=1,
    )
    record_series(
        benchmark, "Figure 11: loss of information vs privacy threshold",
        series, x_label="query \\ k", y_label="LOI (nats)",
    )
    for name, points in series.items():
        values = [v for _, v in points if not math.isnan(v)]
        assert values == sorted(values), f"{name}: LOI must not decrease in k"
