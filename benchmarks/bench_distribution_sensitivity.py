"""Section 5.2 (LOI distribution): runtimes under uniform vs random weights.

Paper shape: runtimes are not affected by the distribution choice; only
the identity of the optimal abstraction may change.
"""

from _common import BENCH_SETTINGS, record_series
from repro.experiments.figures import run_distribution_sensitivity

QUERIES = ("TPCH-Q3", "IMDB-Q1")


def test_distribution_sensitivity(benchmark):
    series = benchmark.pedantic(
        run_distribution_sensitivity,
        kwargs={"settings": BENCH_SETTINGS, "queries": QUERIES},
        rounds=1, iterations=1,
    )
    record_series(
        benchmark,
        "LOI distribution sensitivity (x=0 uniform, x=1 random weights)",
        series, x_label="query \\ distribution", y_label="seconds",
    )
    for name, points in series.items():
        uniform_s, weighted_s = points[0][1], points[1][1]
        # Same order of magnitude (paper: "not affected on average").
        assert weighted_s < 50 * uniform_s + 5.0, name
