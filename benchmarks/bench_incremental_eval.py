"""Incremental candidate evaluation vs from-scratch, on the Figure 12 sweep.

Two measurements per (query, tree size) point of the Fig. 12 tree-size
sweep:

* *candidate throughput* — the same sorted candidate stream Algorithm 2
  scans, scored by the :class:`IncrementalEvaluator` (cached per-(variable,
  level) contributions) vs the seed's from-scratch path (build an
  ``AbstractionFunction``, apply it to every row, recompute LOI).  The
  incremental path must be >= 2x faster and bit-identical.
* *end-to-end search* — ``find_optimal_abstraction`` with
  ``incremental=True`` vs ``False``; results must be bit-identical.  The
  end-to-end gain is smaller because privacy computation dominates once
  candidates pass the LOI gate; the recorded split shows both.
"""

import pytest

from _common import BENCH_QUERIES, BENCH_SETTINGS, perf_counter
from repro.core.loi import UniformDistribution, loss_of_information
from repro.core.optimizer import (
    IncrementalEvaluator,
    OptimizerConfig,
    _SortedFrontier,
    _function_for_levels,
    _occurrence_counts,
    find_optimal_abstraction,
    search_space,
)
from repro.experiments.runner import prepare_context

#: Candidates scored per throughput measurement (the Fig. 12 searches scan
#: hundreds to thousands; this keeps one measurement under a second).
N_CANDIDATES = 4_000
TIMING_ROUNDS = 3


def _search_inputs(context):
    example, tree = context.example, context.tree
    variables, chains = search_space(example, tree)
    return example, tree, variables, chains


def _sorted_candidates(example, tree, variables, chains, limit):
    """The first ``limit`` level-vectors in Algorithm 2's scan order."""
    frontier = _SortedFrontier(
        variables, chains, tree, _occurrence_counts(example, variables)
    )
    candidates = []
    while len(candidates) < limit:
        levels = frontier.pop()
        if levels is None:
            break
        candidates.append(levels)
        frontier.expand(levels)
    return candidates


def _best_of(rounds, run):
    best = float("inf")
    for _ in range(rounds):
        start = perf_counter()
        run()
        best = min(best, perf_counter() - start)
    return best


@pytest.mark.parametrize("query_name", BENCH_QUERIES)
@pytest.mark.parametrize("n_leaves", BENCH_SETTINGS.tree_sizes)
def test_incremental_candidate_throughput(benchmark, query_name, n_leaves):
    context = prepare_context(query_name, BENCH_SETTINGS, n_leaves=n_leaves)
    example, tree, variables, chains = _search_inputs(context)
    candidates = _sorted_candidates(
        example, tree, variables, chains, N_CANDIDATES
    )
    dist = UniformDistribution()

    def score_full():
        return [
            loss_of_information(
                _function_for_levels(
                    tree, example, variables, chains, levels
                ).apply(example),
                tree, dist,
            )
            for levels in candidates
        ]

    def score_incremental():
        evaluator = IncrementalEvaluator(example, tree, variables, chains, dist)
        return [evaluator.loi(levels) for levels in candidates]

    assert score_full() == score_incremental()  # bit-identical, not isclose

    full_seconds = _best_of(TIMING_ROUNDS, score_full)
    benchmark.pedantic(score_incremental, rounds=TIMING_ROUNDS, iterations=1)
    incremental_seconds = benchmark.stats.stats.min
    speedup = full_seconds / incremental_seconds

    benchmark.extra_info["query"] = query_name
    benchmark.extra_info["tree_leaves"] = n_leaves
    benchmark.extra_info["candidates"] = len(candidates)
    benchmark.extra_info["full_seconds"] = full_seconds
    benchmark.extra_info["throughput_speedup"] = speedup
    print(f"\n{query_name} leaves={n_leaves}: {len(candidates)} candidates, "
          f"full {full_seconds:.4f}s vs incremental {incremental_seconds:.4f}s "
          f"-> {speedup:.1f}x")
    assert speedup >= 2.0, (
        f"incremental candidate throughput only {speedup:.2f}x "
        f"({query_name}, {n_leaves} leaves)"
    )


@pytest.mark.parametrize("query_name", BENCH_QUERIES)
def test_end_to_end_bit_identical(benchmark, query_name):
    context = prepare_context(query_name, BENCH_SETTINGS)
    threshold = BENCH_SETTINGS.privacy_threshold
    budget = dict(
        max_candidates=BENCH_SETTINGS.max_candidates,
        max_seconds=BENCH_SETTINGS.max_seconds,
    )

    def run_incremental():
        return find_optimal_abstraction(
            context.example, context.tree, threshold,
            config=OptimizerConfig(**budget),
        )

    incremental = benchmark.pedantic(run_incremental, rounds=1, iterations=1)
    start = perf_counter()
    full = find_optimal_abstraction(
        context.example, context.tree, threshold,
        config=OptimizerConfig(incremental=False, **budget),
    )
    full_seconds = perf_counter() - start

    assert (incremental.loi, incremental.privacy, incremental.edges_used) == (
        full.loi, full.privacy, full.edges_used
    )
    if incremental.function is not None:
        assert incremental.function.assignment == full.function.assignment
    benchmark.extra_info["query"] = query_name
    benchmark.extra_info["full_seconds"] = full_seconds
    benchmark.extra_info["delta_evaluations"] = (
        incremental.stats.delta_evaluations
    )
    benchmark.extra_info["functions_materialized"] = (
        incremental.stats.functions_materialized
    )
