"""Figure 16: optimizer runtime vs the number of query joins.

Paper shape: runtime is not significantly affected by the join count —
the cost is driven by the abstraction space, not query width.
"""

import pytest

from _common import BENCH_SETTINGS
from repro.datasets.queries import join_variants
from repro.experiments.runner import prepare_context, timed_optimal

SWEEP = ("TPCH-Q7", "IMDB-Q2")


def _variants():
    for name in SWEEP:
        for n_joins, query in join_variants(name):
            yield pytest.param(name, n_joins, query, id=f"{name}-j{n_joins}")


@pytest.mark.parametrize("query_name, n_joins, query", list(_variants()))
def test_fig16_joins_runtime(benchmark, query_name, n_joins, query):
    context = prepare_context(query_name, BENCH_SETTINGS, query=query)

    def run():
        result, _ = timed_optimal(context, BENCH_SETTINGS.privacy_threshold)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["query"] = query_name
    benchmark.extra_info["joins"] = n_joins
    benchmark.extra_info["found"] = result.found
