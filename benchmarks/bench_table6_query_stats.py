"""Table 6: the workload's atom and join counts."""

from repro.experiments.figures import run_table6_query_stats

PAPER_TABLE6 = {
    "TPCH-Q3": (3, 2), "TPCH-Q4": (2, 1), "TPCH-Q5": (7, 6),
    "TPCH-Q7": (6, 5), "TPCH-Q9": (6, 5), "TPCH-Q10": (4, 3),
    "TPCH-Q21": (6, 5),
    "IMDB-Q1": (3, 2), "IMDB-Q2": (6, 5), "IMDB-Q3": (5, 4),
    "IMDB-Q4": (7, 6), "IMDB-Q5": (4, 3), "IMDB-Q6": (5, 4),
    "IMDB-Q7": (7, 6),
}


def test_table6_query_stats(benchmark):
    stats = benchmark.pedantic(run_table6_query_stats, rounds=1, iterations=1)
    print()
    print("Table 6: query workload")
    print(f"  {'query':<10} {'atoms':>6} {'joins':>6}   paper")
    for name, (atoms, joins) in sorted(stats.items()):
        expected = PAPER_TABLE6[name]
        print(f"  {name:<10} {atoms:>6} {joins:>6}   {expected}")
    assert stats == PAPER_TABLE6
