"""Figure 12: optimizer runtime as the abstraction tree grows.

Paper shape: runtime grows with the number of leaves but stays tractable
even as the tree approaches the data size.
"""

import pytest

from _common import BENCH_QUERIES, BENCH_SETTINGS
from repro.experiments.runner import prepare_context, timed_optimal


@pytest.mark.parametrize("query_name", BENCH_QUERIES)
@pytest.mark.parametrize("n_leaves", BENCH_SETTINGS.tree_sizes)
def test_fig12_treesize_runtime(benchmark, query_name, n_leaves):
    context = prepare_context(query_name, BENCH_SETTINGS, n_leaves=n_leaves)

    def run():
        result, _ = timed_optimal(context, BENCH_SETTINGS.privacy_threshold)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["query"] = query_name
    benchmark.extra_info["tree_leaves"] = n_leaves
    benchmark.extra_info["found"] = result.found
