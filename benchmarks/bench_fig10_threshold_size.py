"""Figure 10: optimal abstraction size (tree edges used) vs privacy threshold.

Paper shape: the abstraction size grows slowly with k — higher privacy does
not require a much larger abstraction.
"""

from _common import BENCH_QUERIES, BENCH_SETTINGS, record_series
from repro.experiments.figures import run_fig10_threshold_size


def test_fig10_threshold_size(benchmark):
    series = benchmark.pedantic(
        run_fig10_threshold_size,
        kwargs={"settings": BENCH_SETTINGS, "queries": BENCH_QUERIES},
        rounds=1, iterations=1,
    )
    record_series(
        benchmark, "Figure 10: abstraction size vs privacy threshold",
        series, x_label="query \\ k", y_label="tree edges used",
    )
    for name, points in series.items():
        sizes = [edges for _, edges in points if edges >= 0]
        assert sizes, f"{name}: no threshold satisfied"
        # Shape: slow growth — the largest is within a few edges of the smallest.
        assert max(sizes) - min(sizes) <= 10
