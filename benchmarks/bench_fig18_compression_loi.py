"""Figure 18: LOI of our optimum vs the compression baseline of [24].

Paper shape: the compression-based approach pays roughly 2-3x the loss of
information to reach the same privacy threshold.
"""

import math

from _common import BENCH_SETTINGS, record_series
from repro.experiments.figures import run_fig18_compression_loi

QUERIES = ("TPCH-Q3", "IMDB-Q1")


def test_fig18_compression_loi(benchmark):
    series = benchmark.pedantic(
        run_fig18_compression_loi,
        kwargs={"settings": BENCH_SETTINGS, "queries": QUERIES},
        rounds=1, iterations=1,
    )
    record_series(
        benchmark, "Figure 18: LOI, ours vs compression [24]",
        series, x_label="series \\ k", y_label="LOI (nats)",
    )
    for name in QUERIES:
        ours = dict(series[f"{name} (ours)"])
        theirs = dict(series[f"{name} (compression [24])"])
        for k, our_loi in ours.items():
            their_loi = theirs[k]
            if math.isnan(our_loi) or math.isnan(their_loi):
                continue
            assert their_loi >= our_loi - 1e-9, (
                f"{name} k={k}: the baseline cannot beat the optimum"
            )
