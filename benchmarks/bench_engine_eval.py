"""SQL engine vs the naive interpreter on scaled TPC-H joins.

The pluggable engine layer (``repro.engine``) exists for exactly one
reason: pushing CQ evaluation into a relational engine must be *faster*
on real join workloads while staying bit-identical — same output rows
in the same order, same provenance polynomials, same derivation stream.
This guard measures both halves on the join-heaviest TPC-H workload
queries at SF 0.1-scale data (the ``sf01`` scenario scale), where the
naive interpreter's tuple-at-a-time backtracking search pays for every
intermediate binding the SQL planner avoids.

The timed region is evaluation only: the one-time schema load into
SQLite happens on the first (untimed) identity-check pass and is
reported in ``extra_info`` instead, mirroring how the engines are used
— a database is loaded once and queried for every derivation after.
"""

import pytest

from _common import perf_counter
from repro.datasets.queries import get_query
from repro.datasets.tpch import generate_tpch
from repro.engine import NaiveEngine, SqlEngine

#: TPC-H at the sf01 scenario scale (~6.7k tuples).
ENGINE_BENCH_SCALE = 0.1

#: The join-heavy queries where pushdown must pay: Q5 is a five-way
#: join across the schema, Q21 a lineitem self-join.  (The short
#: two/three-way joins Q3/Q10 run near parity at this scale — the
#: engine tier is about the hard tail, and they are already covered for
#: equivalence by tests/test_engines.py.)
ENGINE_BENCH_QUERIES = ("TPCH-Q5", "TPCH-Q21")

SPEEDUP_FLOOR = 2.0
TIMING_ROUNDS = 3


def _best_of(rounds, run):
    best = float("inf")
    for _ in range(rounds):
        start = perf_counter()
        run()
        best = min(best, perf_counter() - start)
    return best


@pytest.mark.parametrize("query_name", ENGINE_BENCH_QUERIES)
def test_sql_engine_speedup(benchmark, query_name):
    database = generate_tpch(scale=ENGINE_BENCH_SCALE, seed=7)
    query = get_query(query_name)
    naive, sql = NaiveEngine(), SqlEngine("sqlite")

    # Bit-identity first (also the untimed SQLite load + warmup):
    # identical rows in identical order with identical polynomials, and
    # an identical derivation stream underneath.
    load_start = perf_counter()
    sql_results = sql.evaluate(query, database)
    load_and_first_eval = perf_counter() - load_start
    naive_results = naive.evaluate(query, database)
    assert list(naive_results.items()) == list(sql_results.items())
    for a, b in zip(
        naive.derivations(query, database), sql.derivations(query, database)
    ):
        assert (a.output(), a.monomial(), a.images, a.bindings) == (
            b.output(), b.monomial(), b.images, b.bindings
        )

    naive_seconds = _best_of(
        TIMING_ROUNDS, lambda: naive.evaluate(query, database)
    )
    benchmark.pedantic(
        lambda: sql.evaluate(query, database),
        rounds=TIMING_ROUNDS, iterations=1,
    )
    sql_seconds = benchmark.stats.stats.min
    speedup = naive_seconds / sql_seconds

    benchmark.extra_info["query"] = query_name
    benchmark.extra_info["tpch_scale"] = ENGINE_BENCH_SCALE
    benchmark.extra_info["tuples"] = database.total_tuples()
    benchmark.extra_info["rows"] = len(naive_results)
    benchmark.extra_info["naive_seconds"] = naive_seconds
    benchmark.extra_info["load_and_first_eval_seconds"] = load_and_first_eval
    benchmark.extra_info["speedup"] = speedup
    print(f"\n{query_name} @ sf={ENGINE_BENCH_SCALE}: "
          f"{len(naive_results)} rows, naive {naive_seconds:.4f}s vs "
          f"sqlite {sql_seconds:.4f}s -> {speedup:.1f}x "
          f"(load+first eval {load_and_first_eval:.4f}s)")
    assert speedup >= SPEEDUP_FLOOR, (
        f"SQL engine only {speedup:.2f}x on {query_name} "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
