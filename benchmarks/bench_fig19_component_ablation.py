"""Figure 19: effect of each Section 4.1 component vs the brute force.

Paper shape: 'sorting abstractions' and 'LOI before privacy' dominate
(>100x); row-by-row, connectivity filtering, and caching each give
constant-factor gains.  Brute force is normalized to 100%.
"""

from _common import BENCH_SETTINGS, record_series
from repro.experiments.figures import (
    ABLATION_LABELS,
    run_fig19_component_ablation,
)


def test_fig19_component_ablation(benchmark):
    series = benchmark.pedantic(
        run_fig19_component_ablation,
        kwargs={
            "settings": BENCH_SETTINGS,
            "queries": ("TPCH-Q3", "IMDB-Q1"),
            "threshold": 2,
            "n_leaves": 14,
            "height": 3,
            "budget_seconds": 45.0,
        },
        rounds=1, iterations=1,
    )
    labelled = {
        name: [(x, pct) for x, pct in points]
        for name, points in series.items()
    }
    record_series(
        benchmark,
        "Figure 19: % of brute-force runtime per standalone component "
        f"(x = {', '.join(f'{i}:{l}' for i, l in enumerate(ABLATION_LABELS))})",
        labelled, x_label="query \\ component", y_label="% of brute force",
    )
    for name, points in series.items():
        by_index = dict(points)
        # The search-side components must dominate the baseline.  When both
        # the baseline and a component run saturate the wall-clock budget
        # the ratio degenerates to ~100%, so allow a small saturation band
        # rather than a strict inequality (EXPERIMENTS.md, deviation 3).
        assert by_index[1] < 115.0, f"{name}: sorting should beat brute force"
        assert by_index[2] < 115.0, f"{name}: loi-first should beat brute force"
        assert min(by_index[1], by_index[2]) < 100.0, (
            f"{name}: at least one search-side component must finish "
            "under the brute-force budget"
        )
