"""Ablation: per-occurrence refinement on top of Algorithm 2.

DESIGN.md design-choice ablation — Definition 3.1 allows per-occurrence
abstraction targets but the paper's search is per-variable uniform.  The
greedy refinement pass must never raise the LOI and must preserve the
privacy guarantee; this bench records how much LOI it recovers and what it
costs.
"""

import pytest

from _common import BENCH_SETTINGS
from repro.core.refine import refine_per_occurrence
from repro.experiments.runner import prepare_context, timed_optimal

QUERIES = ("TPCH-Q3", "IMDB-Q1")


@pytest.mark.parametrize("query_name", QUERIES)
def test_refinement_ablation(benchmark, query_name):
    context = prepare_context(query_name, BENCH_SETTINGS)
    base, _ = timed_optimal(context, threshold=2)
    assert base.found and base.function is not None

    def run():
        return refine_per_occurrence(
            context.example, context.tree, base.function, threshold=2
        )

    refined = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["query"] = query_name
    benchmark.extra_info["uniform_loi"] = base.loi
    benchmark.extra_info["refined_loi"] = refined.loi
    benchmark.extra_info["moves_applied"] = refined.moves_applied
    print(
        f"\n{query_name}: uniform LOI {base.loi:.3f} -> per-occurrence "
        f"{refined.loi:.3f} ({refined.moves_applied} moves, privacy "
        f"{refined.privacy})"
    )
    assert refined.loi <= base.loi + 1e-12
    assert refined.privacy >= 2
