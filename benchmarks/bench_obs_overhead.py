"""Disabled-tracing overhead guard for the observability layer.

PR 9's tentpole promise: instrumentation that nobody turned on is
effectively free.  With no ambient tracer, every ``spans.span(...)`` /
``spans.aggregate(...)`` call site collapses to a contextvar read plus
the shared :data:`repro.obs.spans.NO_SPAN` context manager — no
allocation, no clock read, no record.

Two assertions:

* **overhead** — the no-op fast path, charged once per span event a
  fully *traced* run of the guard job actually records, must cost
  < 5% of the untraced job's runtime.  Measuring the per-event cost
  directly (instead of diffing two noisy end-to-end runs) keeps the
  guard stable on loaded CI machines while still scaling with exactly
  the event volume real instrumentation produces.
* **fidelity** — the traced run's payload must be bit-identical to the
  untraced run's outside the volatile ``trace``/``seconds`` fields
  (tracing may only add a trace, never change results).
"""

from _common import BENCH_SETTINGS, perf_counter
from repro.batch import BatchJob, run_job
from repro.core.optimizer import OptimizerConfig
from repro.obs import spans
from repro.scenarios.snapshot import result_hash

#: Disabled instrumentation may cost at most this fraction of runtime.
MAX_DISABLED_OVERHEAD = 0.05

TIMING_ROUNDS = 3

FAST_PATH_ITERATIONS = 200_000


def _job(trace: bool) -> BatchJob:
    return BatchJob(
        "TPCH-Q3", 2,
        config=OptimizerConfig(
            max_candidates=1_500,
            max_seconds=BENCH_SETTINGS.max_seconds,
            trace=trace,
        ),
    )


def _noop_event_seconds() -> float:
    """Best-of-rounds cost of one disabled span entry+exit."""
    assert spans.current() is None, "fast path needs tracing disabled"
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = perf_counter()
        for _ in range(FAST_PATH_ITERATIONS):
            with spans.span("guard", threshold=2):
                pass
        best = min(best, perf_counter() - start)
    return best / FAST_PATH_ITERATIONS


def test_disabled_tracing_overhead_under_guard(benchmark):
    # Warm the context/session caches so the timed runs measure search.
    warm = run_job(_job(trace=False), BENCH_SETTINGS)
    assert warm.ok, warm.error

    untraced_seconds = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = perf_counter()
        untraced = run_job(_job(trace=False), BENCH_SETTINGS)
        untraced_seconds = min(untraced_seconds, perf_counter() - start)
    assert untraced.ok and untraced.trace is None

    traced = run_job(_job(trace=True), BENCH_SETTINGS)
    assert traced.ok and traced.trace
    events = sum(record["count"] for record in traced.trace)

    per_event = _noop_event_seconds()
    disabled_cost = per_event * events
    overhead = disabled_cost / untraced_seconds

    # Fidelity: the deterministic result slice is identical traced vs
    # untraced (trace and timing are volatile by design).
    assert result_hash(traced.to_payload()) == \
        result_hash(untraced.to_payload())

    benchmark.extra_info["events"] = events
    benchmark.extra_info["noop_ns_per_event"] = per_event * 1e9
    benchmark.extra_info["overhead"] = overhead
    print(f"\n{events} span events/job, no-op path "
          f"{per_event * 1e9:.0f}ns/event -> {disabled_cost * 1e3:.2f}ms "
          f"per {untraced_seconds * 1e3:.0f}ms job "
          f"({overhead * 100:.2f}% disabled overhead)")
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled tracing costs {overhead * 100:.2f}% of runtime "
        f"(guard: {MAX_DISABLED_OVERHEAD * 100:.0f}%)"
    )

    def run_untraced():
        return run_job(_job(trace=False), BENCH_SETTINGS)

    result = benchmark(run_untraced)
    assert result.ok
