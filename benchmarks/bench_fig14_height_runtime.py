"""Figure 14: optimizer runtime as the tree height varies.

Paper shape: no global "higher tree = slower" trend; each query has its
own best height (a U-shaped or flat curve).
"""

import pytest

from _common import BENCH_QUERIES, BENCH_SETTINGS
from repro.experiments.runner import prepare_context, timed_optimal


@pytest.mark.parametrize("query_name", BENCH_QUERIES)
@pytest.mark.parametrize("height", BENCH_SETTINGS.tree_heights)
def test_fig14_height_runtime(benchmark, query_name, height):
    context = prepare_context(query_name, BENCH_SETTINGS, height=height)

    def run():
        result, _ = timed_optimal(context, BENCH_SETTINGS.privacy_threshold)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["query"] = query_name
    benchmark.extra_info["tree_height"] = height
    benchmark.extra_info["found"] = result.found
