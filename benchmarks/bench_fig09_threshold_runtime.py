"""Figure 9: optimizer runtime as the privacy threshold grows.

Paper shape: runtime grows mildly with k and stays tractable up to k=20
(here swept to the BENCH_SETTINGS thresholds); no blow-up in k.
"""

import pytest

from _common import BENCH_QUERIES, BENCH_SETTINGS
from repro.experiments.runner import prepare_context, timed_optimal


@pytest.mark.parametrize("query_name", BENCH_QUERIES)
@pytest.mark.parametrize("threshold", BENCH_SETTINGS.thresholds)
def test_fig09_threshold_runtime(benchmark, query_name, threshold):
    context = prepare_context(query_name, BENCH_SETTINGS)

    def run():
        result, _ = timed_optimal(context, threshold)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["query"] = query_name
    benchmark.extra_info["threshold"] = threshold
    benchmark.extra_info["privacy"] = result.privacy
    benchmark.extra_info["found"] = result.found
