"""Table 7 / Figure 20: the (simulated) user study.

Paper values: Group A identifies the query 6/6, Group B 0/6; hypothetical
question accuracy 9.6/10 (96%) vs 8.5/10 (85%).  The simulation (see
repro.userstudy) replays the same protocol with programmatic users.
"""

from repro.datasets.imdb import generate_imdb
from repro.datasets.queries import get_query
from repro.datasets.trees import imdb_ontology_tree
from repro.provenance.builder import build_kexample
from repro.userstudy import generate_questions, run_user_study


def test_table7_user_study(benchmark):
    db = generate_imdb(n_people=80, n_movies=50, seed=1)
    tree = imdb_ontology_tree(db)
    query = get_query("IMDB-Q3")
    example = build_kexample(query, db, n_rows=2, max_overlap=0.5)
    questions = generate_questions(example, db, n_questions=10, seed=7)

    def run():
        return run_user_study(
            example, query, tree, threshold=3,
            questions=questions, seed=7,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["summary"] = result.summary()
    print()
    print("Table 7 (simulated):")
    print(f"  group A identified the query: {result.group_a_identified}/"
          f"{result.group_size}   (paper: 6/6)")
    print(f"  group B identified the query: {result.group_b_identified}/"
          f"{result.group_size}   (paper: 0/6)")
    print(f"  group A question accuracy   : {result.group_a_accuracy:.0%} "
          "(paper: 96%)")
    print(f"  group B question accuracy   : {result.group_b_accuracy:.0%} "
          "(paper: 85%)")
    print("Figure 20 (correct answers per question):")
    print(f"  group A: {result.group_a_correct}")
    print(f"  group B: {result.group_b_correct}")

    assert result.group_a_identified == result.group_size
    assert result.group_b_identified == 0
    assert result.group_a_accuracy >= result.group_b_accuracy
    assert result.group_a_accuracy >= 0.85
    assert result.group_b_accuracy >= 0.5
