"""Shared settings and helpers for the benchmark suite.

Every figure/table of the paper's evaluation has one ``bench_*`` module.
Benchmarks run the corresponding experiment at a reduced scale (see
DESIGN.md's substitution notes), record the series the paper plots in
``benchmark.extra_info``, and print it so ``pytest benchmarks/
--benchmark-only -s`` doubles as the harness that regenerates the numbers
in EXPERIMENTS.md.
"""

from __future__ import annotations

import time

from repro.experiments.report import format_series
from repro.experiments.settings import ExperimentSettings

#: The benchmark profile: small enough for minutes-long total runtime,
#: wide enough to exhibit every shape the paper reports.
BENCH_SETTINGS = ExperimentSettings(
    thresholds=(2, 4, 6),
    tree_sizes=(30, 60, 120),
    tree_heights=(3, 4, 5),
    row_counts=(2, 3),
    tree_leaves=60,
    tpch_scale=0.015,
    imdb_people=80,
    imdb_movies=50,
    max_candidates=4_000,
    max_seconds=20.0,
)

BENCH_QUERIES = ("TPCH-Q3", "TPCH-Q10", "IMDB-Q1")

#: The benchmark suite's timing surface.  Benchmarks measure the repro
#: library from outside, so they use the raw clock rather than
#: ``repro.obs.clock`` (what the overhead benchmark is *measuring*);
#: REP007 exempts this module by name and the suite imports from here.
perf_counter = time.perf_counter
monotonic = time.monotonic


def record_series(benchmark, title: str, series, x_label: str, y_label: str) -> None:
    """Attach a figure's series to the benchmark record and print it."""
    benchmark.extra_info["series"] = {
        name: list(points) for name, points in series.items()
    }
    print()
    print(format_series(title, series, x_label=x_label, y_label=y_label))
