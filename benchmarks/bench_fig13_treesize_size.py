"""Figure 13: optimal abstraction size vs tree size.

Paper shape: larger trees need *fewer* edges — each abstract node covers
more concretizations, so less of the tree must be used for the same
privacy.
"""

from _common import BENCH_QUERIES, BENCH_SETTINGS, record_series
from repro.experiments.figures import run_fig13_treesize_size


def test_fig13_treesize_size(benchmark):
    series = benchmark.pedantic(
        run_fig13_treesize_size,
        kwargs={"settings": BENCH_SETTINGS, "queries": BENCH_QUERIES},
        rounds=1, iterations=1,
    )
    record_series(
        benchmark, "Figure 13: abstraction size vs tree size",
        series, x_label="query \\ leaves", y_label="tree edges used",
    )
    shrinking = 0
    for points in series.values():
        sizes = [edges for _, edges in points if edges >= 0]
        if len(sizes) >= 2 and sizes[-1] <= sizes[0]:
            shrinking += 1
    assert shrinking >= len(series) // 2, (
        "larger trees should mostly not need more edges"
    )
