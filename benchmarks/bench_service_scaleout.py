"""Aggregate job-service throughput: process tier vs thread tier.

PR 5's tentpole: the optimizer search is pure CPU-bound Python, so a
service running its searches on worker *threads* is GIL-capped at about
one core no matter how many workers are configured.  The process
executor (``repro serve --executor process --workers N``) dispatches
each claimed job to a process pool instead, scaling the search to the
hardware while every service behavior around it stays identical.

Two assertions:

* **throughput** — the same job stream through a 4-process-worker
  service must finish >= 2x faster (wall clock) than through a
  1-process-worker service.  Enforced only on hosts with >= 4 CPUs (the
  CI runner); on smaller hosts the phases still run and the measured
  ratio is reported.
* **fidelity** — every result payload must be bit-identical across the
  thread tier, the 1-process tier, and the 4-process tier (timing
  fields aside): the executor may only change speed, never results.

Every job uses a distinct ``n_leaves``, so every context is cold in
every phase and per-job effort is deterministic — no cross-job session
sharing whose worker-placement luck could skew either the clock or the
effort counters.
"""

import os

from _common import BENCH_SETTINGS, monotonic, perf_counter
from repro.batch import BatchJob
from repro.core.optimizer import OptimizerConfig
from repro.service import JobService

#: The guard ratio: 1-process-worker wall seconds / 4-process-worker.
MIN_SPEEDUP = 2.0

POOL_WORKERS = 4

#: One TPCH-Q3 job per tree size — distinct contexts, ~0.5-2s of pure
#: search each at the bench profile.
N_LEAVES = (28, 31, 34, 37, 40, 43, 46, 49)


def _jobs():
    # Candidate-capped, *not* wall-clock-capped: a max_seconds budget
    # tripping under 4-way CPU contention would truncate those searches
    # differently than the serial phases and break the fidelity check
    # (exactly why the result cache refuses wall-clock-cut results).
    config = OptimizerConfig(
        max_candidates=BENCH_SETTINGS.max_candidates, max_seconds=None
    )
    return [
        BatchJob("TPCH-Q3", 2, n_leaves=n, tag=f"nl{n}", config=config)
        for n in N_LEAVES
    ]


def _run_stream(executor: str, workers: int):
    """One service lifetime: submit every job, wait, return (payloads, wall)."""
    service = JobService(
        settings=BENCH_SETTINGS,
        worker_threads=workers,
        max_queue=len(N_LEAVES) + 4,
        executor=executor,
    ).start()
    try:
        start = perf_counter()
        ids = [service.submit(job) for job in _jobs()]
        deadline = monotonic() + 600
        while True:
            states = [service.status_payload(i)["state"] for i in ids]
            if all(s not in ("queued", "running") for s in states):
                break
            assert monotonic() < deadline, f"jobs stuck: {states}"
            time.sleep(0.05)
        wall = perf_counter() - start
        return [service.result_payload(i)[1] for i in ids], wall
    finally:
        service.shutdown()


def _normalized(payload: dict) -> dict:
    """Strip the only legitimately tier-dependent fields: timings."""
    clean = {k: v for k, v in payload.items() if k not in ("id", "seconds")}
    clean["stats"] = {
        k: v for k, v in payload["stats"].items() if k != "elapsed_seconds"
    }
    return clean


def test_service_scaleout_throughput(benchmark):
    # Every phase starts cold: the pools fork their workers before this
    # process ever builds a context, and the thread phase (which *does*
    # warm this process) runs last — warm caches would otherwise shift
    # the effort counters and defeat the payload comparison.
    pool4, pool4_seconds = _run_stream("process", POOL_WORKERS)
    pool1, pool1_seconds = _run_stream("process", 1)
    thread1, thread1_seconds = _run_stream("thread", 1)

    for payloads in (pool4, pool1, thread1):
        assert [p["state"] for p in payloads] == ["done"] * len(N_LEAVES), (
            payloads
        )

    # Fidelity: the executor tier may never change what a job returns.
    for other in (pool1, thread1):
        for via_pool, via_other in zip(pool4, other):
            assert _normalized(via_pool) == _normalized(via_other), (
                "result payloads differ across executor tiers"
            )

    cores = os.cpu_count() or 1
    speedup = pool1_seconds / pool4_seconds
    print(
        f"\n{len(N_LEAVES)} jobs: thread x1 {thread1_seconds:.2f}s, "
        f"process x1 {pool1_seconds:.2f}s, "
        f"process x{POOL_WORKERS} {pool4_seconds:.2f}s "
        f"-> {speedup:.1f}x scale-out on {cores} cores"
    )
    benchmark.extra_info["thread1_seconds"] = thread1_seconds
    benchmark.extra_info["pool1_seconds"] = pool1_seconds
    benchmark.extra_info["pool4_seconds"] = pool4_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["cores"] = cores
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    if cores >= POOL_WORKERS:
        assert speedup >= MIN_SPEEDUP, (
            f"{POOL_WORKERS} process workers only {speedup:.2f}x faster "
            f"than 1 (expected >= {MIN_SPEEDUP}x on {cores} cores)"
        )
    else:
        print(
            f"(host has {cores} < {POOL_WORKERS} cores: the >= "
            f"{MIN_SPEEDUP}x guard is enforced on the CI runner)"
        )
