"""Figure 17: optimizer runtime vs the number of K-example rows.

Paper shape: the row count is *the* determining runtime factor — more rows
mean fewer CIM queries per concretization, forcing the search to examine
exponentially many abstractions.
"""

import pytest

from _common import BENCH_SETTINGS
from repro.experiments.runner import prepare_context, timed_optimal

QUERIES = ("TPCH-Q3", "IMDB-Q1")


@pytest.mark.parametrize("query_name", QUERIES)
@pytest.mark.parametrize("n_rows", BENCH_SETTINGS.row_counts)
def test_fig17_rows_runtime(benchmark, query_name, n_rows):
    context = prepare_context(query_name, BENCH_SETTINGS, n_rows=n_rows)

    def run():
        result, _ = timed_optimal(context, BENCH_SETTINGS.privacy_threshold)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["query"] = query_name
    benchmark.extra_info["rows"] = n_rows
    benchmark.extra_info["found"] = result.found
