"""Table 3: the consistent-query landscape of the running example.

Paper values: 14 consistent queries, 3 connected, 2 CIM for Ex_abs1.  Our
generator enumerates the most-specific representatives rather than the
full generalization lattice (see repro.core.consistency), so the
consistent/connected counts differ, but the privacy — the CIM count — is
exactly the paper's 2.
"""

from repro.experiments.figures import run_table3_running_example


def test_table3_running_example(benchmark):
    counts = benchmark.pedantic(run_table3_running_example, rounds=1, iterations=1)
    benchmark.extra_info.update(counts)
    print()
    print("Table 3 (running example, Ex_abs1):")
    print(f"  consistent queries : {counts['consistent']}")
    print(f"  connected          : {counts['connected']}")
    print(f"  CIM (privacy)      : {counts['cim']}   (paper: 2)")
    assert counts["cim"] == 2
    assert counts["consistent"] >= counts["connected"] >= counts["cim"]
