"""Figure 15: optimal abstraction size vs tree height.

Paper shape: the abstraction size increases with tree height — deeper
trees mean longer leaf-to-target paths.
"""

from _common import BENCH_QUERIES, BENCH_SETTINGS, record_series
from repro.experiments.figures import run_fig15_height_size


def test_fig15_height_size(benchmark):
    series = benchmark.pedantic(
        run_fig15_height_size,
        kwargs={"settings": BENCH_SETTINGS, "queries": BENCH_QUERIES},
        rounds=1, iterations=1,
    )
    record_series(
        benchmark, "Figure 15: abstraction size vs tree height",
        series, x_label="query \\ height", y_label="tree edges used",
    )
    growing = 0
    for points in series.values():
        sizes = [edges for _, edges in points if edges >= 0]
        if len(sizes) >= 2 and sizes[-1] >= sizes[0]:
            growing += 1
    assert growing >= len(series) // 2, (
        "deeper trees should mostly use at least as many edges"
    )
